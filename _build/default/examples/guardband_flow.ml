(* Guardband estimation under static and dynamic aging stress (paper
   Sec. 4.2, Fig. 4b).

     dune exec examples/guardband_flow.exe

   Static stress applies one duty-cycle corner to every transistor; dynamic
   stress simulates a workload, extracts per-cell duty cycles, annotates the
   netlist with corner-indexed cell names (NAND2_X1@0.4_0.6) and times it
   against the complete degradation-aware library. *)

module Scenario = Aging_physics.Scenario
module Axes = Aging_liberty.Axes
module N = Aging_netlist.Netlist
module Deg = Aging_core.Degradation_library
module Guardband = Aging_core.Guardband
module Designs = Aging_designs.Designs
module Rng = Aging_util.Rng

let () =
  let deglib = Deg.create ~axes:Axes.coarse ~cache_dir:"_libcache_coarse" () in
  let design = Designs.dsp () in
  Printf.printf "design %s: %d cells\n%!" design.N.design_name
    (Array.length design.N.instances);

  (* Static stress: worst case and the balanced case that duty-cycle
     equalization techniques aim for. *)
  List.iter
    (fun (label, corner) ->
      let g = Guardband.static ~deglib ~corner design in
      Printf.printf "static %-12s guardband %6.1f ps (fresh %.1f -> aged %.1f ps)\n%!"
        label
        (g.Guardband.guardband *. 1e12)
        (g.Guardband.fresh_period *. 1e12)
        (g.Guardband.aged_period *. 1e12))
    [ ("worst-case", Scenario.worst_case); ("balanced", Scenario.balanced) ];

  (* Dynamic stress: a random MAC workload drives the duty cycles. *)
  let rng = Rng.create 2024L in
  let stimulus _ =
    List.map (fun (p, _) -> (p, Rng.bool rng)) design.N.input_ports
  in
  let g, annotated = Guardband.dynamic ~cycles:512 ~deglib ~stimulus design in
  Printf.printf "dynamic (workload) guardband %6.1f ps\n" (g.Guardband.guardband *. 1e12);
  let corners = Aging_sim.Activity.corners_used annotated in
  Printf.printf "annotated netlist uses %d distinct duty-cycle corners, e.g. %s\n"
    (List.length corners)
    (match annotated.N.instances.(0).N.cell_name with s -> s);
  Printf.printf
    "note: the workload-specific guardband is below the worst-case one —\n\
     worst-case static stress is what suppresses aging under any workload.\n"
