(* Aging-aware logic synthesis (paper Sec. 4.3, Fig. 6a/6b).

     dune exec examples/aging_aware_synthesis.exe

   The same RTL is synthesized twice: against the initial library
   (traditional flow) and against the worst-case degradation-aware library.
   The aware netlist contains its guardband by construction — the synthesis
   tool, fed aged delay tables, picks aging-tolerant cells (including the
   high-beta "H" variants) and sizes against aged timing. *)

module Axes = Aging_liberty.Axes
module N = Aging_netlist.Netlist
module Deg = Aging_core.Degradation_library
module AS = Aging_core.Aging_synthesis
module Designs = Aging_designs.Designs

let () =
  let deglib = Deg.create ~axes:Axes.coarse ~cache_dir:"_libcache_coarse" () in
  let design = Designs.risc5 () in
  Printf.printf "synthesizing %s (%d cells) twice...\n%!" design.N.design_name
    (Array.length design.N.instances);
  let c = AS.run ~deglib design in
  Printf.printf
    "traditional design: fresh %.1f ps, aged %.1f ps -> required guardband %.1f ps\n"
    (c.AS.trad_fresh_period *. 1e12)
    (c.AS.trad_aged_period *. 1e12)
    (AS.required_guardband c *. 1e12);
  Printf.printf
    "aging-aware design: fresh %.1f ps, aged %.1f ps -> contained guardband %.1f ps\n"
    (c.AS.aware_fresh_period *. 1e12)
    (c.AS.aware_aged_period *. 1e12)
    (AS.contained_guardband c *. 1e12);
  Printf.printf "guardband reduction %.1f%%, frequency gain %.2f%%, area overhead %.2f%%\n"
    (AS.guardband_reduction c *. 100.)
    (AS.frequency_gain c *. 100.)
    (AS.area_overhead c *. 100.);
  (* Show which aging-tolerant cells the aware flow reached for. *)
  let count_h nl =
    Array.fold_left
      (fun acc (inst : N.instance) ->
        let base = N.base_cell_name inst.N.cell_name in
        if String.length base > 0 && base.[String.length base - 1] = 'H' then
          acc + 1
        else acc)
      0 nl.N.instances
  in
  Printf.printf "high-beta (H) cells: traditional %d, aging-aware %d\n"
    (count_h c.AS.traditional) (count_h c.AS.aware)
