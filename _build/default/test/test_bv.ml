(* Word-level RTL builder: every operator checked against integer
   semantics through the netlist evaluator. *)

module N = Aging_netlist.Netlist
module Builder = N.Builder
module Bv = Aging_designs.Bv

let mask w = (1 lsl w) - 1

let bits name w v =
  List.init w (fun i -> (Printf.sprintf "%s[%d]" name i, (v asr i) land 1 = 1))

let read outs name w =
  List.fold_left
    (fun acc bit ->
      if List.assoc (Printf.sprintf "%s[%d]" name bit) outs then acc lor (1 lsl bit)
      else acc)
    0 (List.init w Fun.id)

(* Builds a combinational netlist computing [f] over two w-bit inputs and
   checks it against [reference] on a set of operand pairs. *)
let check_binop ?(w = 8) name f reference =
  let b = Builder.create "op" in
  let c = Bv.ctx b in
  let x = Bv.input c "x" w and y = Bv.input c "y" w in
  Bv.output c "z" (f c x y);
  let nl = Builder.finish b in
  let rng = Aging_util.Rng.create 77L in
  let cases =
    [ (0, 0); (mask w, mask w); (1, mask w); (85, 170) ]
    @ List.init 30 (fun _ ->
          (Aging_util.Rng.int rng (1 lsl w), Aging_util.Rng.int rng (1 lsl w)))
  in
  List.iter
    (fun (xv, yv) ->
      let outs = N.eval_combinational nl ~inputs:(bits "x" w xv @ bits "y" w yv) in
      Alcotest.(check int)
        (Printf.sprintf "%s %d %d" name xv yv)
        (reference xv yv land mask w)
        (read outs "z" w))
    cases

let test_add () = check_binop "add" (fun c x y -> Bv.add c x y) ( + )
let test_add_fast () = check_binop "add_fast" (fun c x y -> Bv.add_fast c x y) ( + )
let test_sub () = check_binop "sub" (fun c x y -> Bv.sub c x y) ( - )
let test_sub_fast () = check_binop "sub_fast" (fun c x y -> Bv.sub_fast c x y) ( - )
let test_and () = check_binop "and" (fun c x y -> Bv.and_ c x y) ( land )
let test_or () = check_binop "or" (fun c x y -> Bv.or_ c x y) ( lor )
let test_xor () = check_binop "xor" (fun c x y -> Bv.xor_ c x y) ( lxor )

let test_add_fast_wide () =
  check_binop ~w:13 "add_fast wide" (fun c x y -> Bv.add_fast c x y) ( + )

let test_mul () =
  let b = Builder.create "mul" in
  let c = Bv.ctx b in
  let x = Bv.input c "x" 6 and y = Bv.input c "y" 6 in
  Bv.output c "z" (Bv.mul c x y);
  let nl = Builder.finish b in
  List.iter
    (fun (xv, yv) ->
      let outs = N.eval_combinational nl ~inputs:(bits "x" 6 xv @ bits "y" 6 yv) in
      Alcotest.(check int) (Printf.sprintf "%d*%d" xv yv) (xv * yv) (read outs "z" 12))
    [ (0, 0); (63, 63); (7, 9); (31, 2); (13, 21) ]

let test_mul_const () =
  List.iter
    (fun k ->
      let b = Builder.create "mulc" in
      let c = Bv.ctx b in
      let x = Bv.input c "x" 12 in
      Bv.output c "z" (Bv.mul_const c x k);
      let nl = Builder.finish b in
      List.iter
        (fun xv ->
          let outs = N.eval_combinational nl ~inputs:(bits "x" 12 xv) in
          Alcotest.(check int)
            (Printf.sprintf "%d * %d" xv k)
            ((xv * k) land mask 12)
            (read outs "z" 12))
        [ 0; 1; 100; 2047 ])
    [ 0; 1; 45; 63; -12; -59 ]

let test_shifts_and_extends () =
  let b = Builder.create "sh" in
  let c = Bv.ctx b in
  let x = Bv.input c "x" 8 in
  Bv.output c "shl" (Bv.shl_const c x 3);
  Bv.output c "asr" (Bv.asr_const c x 2);
  Bv.output c "sx" (Bv.sext c x 12);
  Bv.output c "zx" (Bv.zext c x 12);
  let nl = Builder.finish b in
  let check xv =
    let outs = N.eval_combinational nl ~inputs:(bits "x" 8 xv) in
    let signed = if xv >= 128 then xv - 256 else xv in
    Alcotest.(check int) "shl" ((xv lsl 3) land 255) (read outs "shl" 8);
    Alcotest.(check int) "asr" ((signed asr 2) land 255) (read outs "asr" 8);
    Alcotest.(check int) "sext" (signed land mask 12) (read outs "sx" 12);
    Alcotest.(check int) "zext" xv (read outs "zx" 12)
  in
  List.iter check [ 0; 1; 127; 128; 200; 255 ]

let test_mux_tree () =
  let b = Builder.create "mux" in
  let c = Bv.ctx b in
  let sel = Bv.input c "s" 2 in
  let choices = List.init 4 (fun i -> Bv.const c (10 + i) 8) in
  Bv.output c "z" (Bv.mux_tree c ~sel choices);
  let nl = Builder.finish b in
  List.iter
    (fun s ->
      let outs = N.eval_combinational nl ~inputs:(bits "s" 2 s) in
      Alcotest.(check int) "selected" (10 + s) (read outs "z" 8))
    [ 0; 1; 2; 3 ]

let test_eq_const_and_reduce () =
  let b = Builder.create "cmp" in
  let c = Bv.ctx b in
  let x = Bv.input c "x" 5 in
  Builder.output (Bv.builder c) "eq" (Bv.eq_const c x 19);
  Builder.output (Bv.builder c) "any" (Bv.reduce_or c x);
  let nl = Builder.finish b in
  let run xv =
    let outs = N.eval_combinational nl ~inputs:(bits "x" 5 xv) in
    (List.assoc "eq" outs, List.assoc "any" outs)
  in
  Alcotest.(check (pair bool bool)) "19" (true, true) (run 19);
  Alcotest.(check (pair bool bool)) "18" (false, true) (run 18);
  Alcotest.(check (pair bool bool)) "0" (false, false) (run 0)

let test_constants () =
  let b = Builder.create "const" in
  let c = Bv.ctx b in
  Bv.output c "k" (Bv.const c 0b1011010 8);
  let nl = Builder.finish b in
  let outs = N.eval_combinational nl ~inputs:[] in
  Alcotest.(check int) "constant value" 0b1011010 (read outs "k" 8)

let prop_add_fast_equals_ripple =
  Fixtures.qtest ~count:20 "prefix adder = ripple adder with carry-in"
    QCheck2.Gen.(triple (int_range 0 1023) (int_range 0 1023) bool)
    (fun (xv, yv, cin) ->
      let b = Builder.create "addcmp" in
      let c = Bv.ctx b in
      let x = Bv.input c "x" 10 and y = Bv.input c "y" 10 in
      let carry = if cin then Bv.one_net c else Bv.zero_net c in
      Bv.output c "f" (Bv.add_fast ~cin:carry c x y);
      Bv.output c "r" (Bv.add ~cin:carry c x y);
      let nl = Builder.finish b in
      let outs = N.eval_combinational nl ~inputs:(bits "x" 10 xv @ bits "y" 10 yv) in
      read outs "f" 10 = read outs "r" 10
      && read outs "f" 10 = (xv + yv + if cin then 1 else 0) land 1023)

let suite =
  [
    ("bv: ripple add", `Quick, test_add);
    ("bv: prefix add", `Quick, test_add_fast);
    ("bv: sub", `Quick, test_sub);
    ("bv: fast sub", `Quick, test_sub_fast);
    ("bv: and", `Quick, test_and);
    ("bv: or", `Quick, test_or);
    ("bv: xor", `Quick, test_xor);
    ("bv: wide prefix add", `Quick, test_add_fast_wide);
    ("bv: array multiplier", `Quick, test_mul);
    ("bv: constant multiplier", `Quick, test_mul_const);
    ("bv: shifts and extends", `Quick, test_shifts_and_extends);
    ("bv: mux tree", `Quick, test_mux_tree);
    ("bv: comparison and reduction", `Quick, test_eq_const_and_reduce);
    ("bv: constants", `Quick, test_constants);
  ]

let props = [ prop_add_fast_equals_ripple ]
