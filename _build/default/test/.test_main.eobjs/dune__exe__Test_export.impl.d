test/test_export.ml: Aging_designs Aging_liberty Aging_netlist Aging_sta Alcotest Array Fixtures Lazy List String
