test/test_spice.ml: Aging_physics Aging_spice Alcotest Array Fixtures Float List Printf QCheck2
