test/test_synth.ml: Aging_cells Aging_designs Aging_liberty Aging_netlist Aging_sta Aging_synth Alcotest Array Fixtures Hashtbl Lazy List Option QCheck2
