test/test_cells.ml: Aging_cells Aging_physics Aging_spice Alcotest Fixtures List
