test/test_core.ml: Aging_cells Aging_core Aging_designs Aging_image Aging_liberty Aging_netlist Aging_physics Aging_sim Aging_synth Alcotest Array Filename Fixtures Lazy List String Sys
