test/fixtures.ml: Aging_cells Aging_core Aging_liberty Aging_netlist Aging_physics Aging_util Alcotest Float Lazy List QCheck2 QCheck_alcotest
