test/test_physics.ml: Aging_physics Alcotest Fixtures Float List QCheck2
