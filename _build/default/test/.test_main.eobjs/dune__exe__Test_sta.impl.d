test/test_sta.ml: Aging_designs Aging_liberty Aging_netlist Aging_sta Alcotest Fixtures Float Lazy List QCheck2 String
