test/test_image.ml: Aging_image Aging_util Alcotest Array Fixtures Int64 List Printf QCheck2
