test/test_util.ml: Aging_util Alcotest Array Fixtures Format List QCheck2 String
