test/test_main.ml: Alcotest Test_bv Test_cells Test_core Test_designs Test_export Test_image Test_liberty Test_netlist Test_physics Test_sim Test_spice Test_sta Test_synth Test_util
