test/test_designs.ml: Aging_designs Aging_image Aging_netlist Aging_util Alcotest Array Fixtures Fun List Printf QCheck2
