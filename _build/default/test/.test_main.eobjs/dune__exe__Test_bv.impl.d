test/test_bv.ml: Aging_designs Aging_netlist Aging_util Alcotest Fixtures Fun List Printf QCheck2
