test/test_netlist.ml: Aging_cells Aging_designs Aging_netlist Alcotest Array Fixtures List Printf QCheck2 String
