test/test_liberty.ml: Aging_cells Aging_liberty Aging_physics Alcotest Array Fixtures Lazy List QCheck2 String
