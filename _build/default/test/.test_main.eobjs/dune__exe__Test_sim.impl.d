test/test_sim.ml: Aging_designs Aging_netlist Aging_physics Aging_sim Aging_util Alcotest Array Fixtures Float Lazy List QCheck2 String
