module N = Aging_netlist.Netlist
module Subject = Aging_synth.Subject
module Decompose = Aging_synth.Decompose
module Mapper = Aging_synth.Mapper
module Sizing = Aging_synth.Sizing
module Buffering = Aging_synth.Buffering
module Slew_repair = Aging_synth.Slew_repair
module Flow = Aging_synth.Flow
module Timing = Aging_sta.Timing
module Designs = Aging_designs.Designs

let fresh () = Lazy.force Fixtures.fresh_library
let aged () = Lazy.force Fixtures.aged_library

let test_subject_simplification () =
  let g = Subject.create () in
  let a = Subject.source g "a" in
  Alcotest.(check int) "same source shared" a (Subject.source g "a");
  let na = Subject.inv g a in
  Alcotest.(check int) "double negation collapses" a (Subject.inv g na);
  Alcotest.(check int) "nand with itself is inversion" na (Subject.nand g a a);
  let t = Subject.constant g true in
  Alcotest.(check int) "nand with true inverts" na (Subject.nand g a t);
  let f = Subject.constant g false in
  Alcotest.(check int) "nand with false is true" t (Subject.nand g a f);
  Alcotest.(check int) "structural hashing"
    (Subject.nand g a na) (Subject.nand g na a)

let test_subject_eval () =
  let g = Subject.create () in
  let a = Subject.source g "a" and b = Subject.source g "b" in
  let x = Subject.xor2 g a b in
  let env va vb name = if name = "a" then va else vb in
  Alcotest.(check bool) "xor 10" true (Subject.eval g (env true false) x);
  Alcotest.(check bool) "xor 11" false (Subject.eval g (env true true) x);
  let m = Subject.mux g ~sel:a ~a0:b ~a1:(Subject.inv g b) in
  Alcotest.(check bool) "mux sel=0 passes a0" true (Subject.eval g (env false true) m);
  Alcotest.(check bool) "mux sel=1 passes a1" false (Subject.eval g (env true true) m)

let test_decompose_families_match_logic () =
  (* Every catalog family's decomposition must agree with the cell logic on
     all input combinations. *)
  List.iter
    (fun (cell : Aging_cells.Cell.t) ->
      if cell.Aging_cells.Cell.kind = Aging_cells.Cell.Combinational then begin
        let n = List.length cell.Aging_cells.Cell.inputs in
        let g = Subject.create () in
        let sources =
          List.map (fun pin -> Subject.source g pin) cell.Aging_cells.Cell.inputs
        in
        let outs = Decompose.cell_outputs g ~base:cell.Aging_cells.Cell.base sources in
        for k = 0 to (1 lsl n) - 1 do
          let values = List.init n (fun i -> k land (1 lsl i) <> 0) in
          let env name =
            List.assoc name (List.combine cell.Aging_cells.Cell.inputs values)
          in
          let got = List.map (Subject.eval g env) outs in
          let want = cell.Aging_cells.Cell.logic values in
          if got <> want then
            Alcotest.failf "%s decomposition mismatch" cell.Aging_cells.Cell.name
        done
      end)
    (Aging_cells.Catalog.all ())

let test_map_counter_equivalent () =
  let design = Designs.counter ~bits:5 in
  let subject, bounds = Decompose.of_netlist design in
  let result =
    Mapper.map ~library:(fresh ()) ~design_name:"c" ~clock_name:"clk" subject bounds
  in
  Alcotest.(check bool) "functionally equivalent" true
    (Fixtures.equivalent design result.Mapper.netlist);
  (* Every mapped cell resolves in the target library. *)
  Array.iter
    (fun (inst : N.instance) ->
      Alcotest.(check bool)
        (inst.N.cell_name ^ " in library")
        true
        (Aging_liberty.Library.find (fresh ()) (N.base_cell_name inst.N.cell_name)
        <> None))
    result.Mapper.netlist.N.instances

let test_map_dsp_equivalent () =
  let design = Designs.dsp () in
  let subject, bounds = Decompose.of_netlist design in
  let result =
    Mapper.map ~library:(fresh ()) ~design_name:"dsp" ~clock_name:"clk" subject
      bounds
  in
  Alcotest.(check bool) "dsp equivalent after mapping" true
    (Fixtures.equivalent design result.Mapper.netlist)

let max_fanout_of nl =
  let counts = Hashtbl.create 64 in
  Array.iter
    (fun (inst : N.instance) ->
      List.iter
        (fun (_, net) ->
          if nl.N.clock <> Some net then
            Hashtbl.replace counts net
              (1 + Option.value (Hashtbl.find_opt counts net) ~default:0))
        inst.N.inputs)
    nl.N.instances;
  Hashtbl.fold (fun _ v acc -> max v acc) counts 0

let test_buffering () =
  let design = Designs.risc5 () in
  let buffered = Buffering.buffer_fanout ~max_fanout:6 design in
  Alcotest.(check bool) "fanout bounded" true (max_fanout_of buffered <= 6);
  Alcotest.(check bool) "equivalent" true (Fixtures.equivalent design buffered)

let test_sizing_improves () =
  let design = Designs.counter ~bits:8 in
  let lib = fresh () in
  let before = Timing.min_period (Timing.analyze ~library:lib design) in
  let sized = Sizing.resize ~passes:4 ~library:lib design in
  let after = Timing.min_period (Timing.analyze ~library:lib sized) in
  Alcotest.(check bool) "not worse" true (after <= before +. 1e-13);
  Alcotest.(check bool) "equivalent" true (Fixtures.equivalent design sized)

let test_variant_sweep () =
  let design = Designs.counter ~bits:8 in
  let lib = aged () in
  let before = Timing.min_period (Timing.analyze ~library:lib design) in
  let swept = Sizing.variant_sweep ~library:lib design in
  let after = Timing.min_period (Timing.analyze ~library:lib swept) in
  Alcotest.(check bool) "not worse" true (after <= before +. 1e-13);
  Alcotest.(check bool) "equivalent" true (Fixtures.equivalent design swept)

let test_slew_repair () =
  let design = Designs.risc5 () in
  let lib = fresh () in
  let before = Timing.min_period (Timing.analyze ~library:lib design) in
  let repaired = Slew_repair.repair ~slew_limit:1.5e-10 ~library:lib design in
  let after = Timing.min_period (Timing.analyze ~library:lib repaired) in
  Alcotest.(check bool) "not worse" true (after <= before +. 1e-13);
  Alcotest.(check bool) "equivalent" true (Fixtures.equivalent design repaired)

let quick_options =
  { Flow.default_options with Flow.sizing_passes = 2; map_rounds = 1 }

let test_flow_compile_counter () =
  let design = Designs.counter ~bits:6 in
  let lib = fresh () in
  let compiled = Flow.compile ~options:quick_options ~library:lib design in
  Alcotest.(check bool) "equivalent" true (Fixtures.equivalent design compiled);
  Alcotest.(check bool) "timeable" true (Flow.min_period ~library:lib compiled > 0.)

let test_flow_ports_preserved () =
  let design = Designs.dsp () in
  let compiled = Flow.compile ~options:quick_options ~library:(fresh ()) design in
  let names ports = List.sort compare (List.map fst ports) in
  Alcotest.(check (list string)) "inputs" (names design.N.input_ports)
    (names compiled.N.input_ports);
  Alcotest.(check (list string)) "outputs" (names design.N.output_ports)
    (names compiled.N.output_ports)

let test_aged_mapping_not_slower_aged () =
  (* Compiling against the aged library should produce a design that is not
     worse under the aged library than the fresh-compiled one by more than
     noise. *)
  let design = Designs.counter ~bits:8 in
  let trad = Flow.compile ~options:quick_options ~library:(fresh ()) design in
  let aware = Flow.compile ~options:quick_options ~library:(aged ()) design in
  let aged_p nl = Flow.min_period ~library:(aged ()) nl in
  Alcotest.(check bool) "aware aged period within 10% of trad's" true
    (aged_p aware <= aged_p trad *. 1.1)

let test_mapper_needs_base_cells () =
  let tiny =
    Aging_liberty.Library.create ~lib_name:"tiny" ~axes:Aging_liberty.Axes.coarse
      [ Aging_liberty.Library.find_exn (fresh ()) "XOR2_X1" ]
  in
  let design = Designs.counter ~bits:2 in
  let subject, bounds = Decompose.of_netlist design in
  try
    ignore (Mapper.map ~library:tiny ~design_name:"c" ~clock_name:"clk" subject bounds);
    Alcotest.fail "mapping without NAND2/INV succeeded"
  with Failure _ -> ()

let prop_flow_equivalence_counter =
  Fixtures.qtest ~count:5 "flow preserves function for various widths"
    QCheck2.Gen.(int_range 2 6)
    (fun bits ->
      let design = Designs.counter ~bits in
      let compiled =
        Flow.compile ~options:quick_options
          ~library:(Lazy.force Fixtures.fresh_library) design
      in
      Fixtures.equivalent ~cycles:40 design compiled)

let suite =
  [
    ("subject: local simplification", `Quick, test_subject_simplification);
    ("subject: evaluation", `Quick, test_subject_eval);
    ("decompose: all families match logic", `Quick, test_decompose_families_match_logic);
    ("mapper: counter equivalence", `Quick, test_map_counter_equivalent);
    ("mapper: dsp equivalence", `Quick, test_map_dsp_equivalent);
    ("buffering: bounds fanout", `Quick, test_buffering);
    ("sizing: never worse, equivalent", `Quick, test_sizing_improves);
    ("sizing: variant sweep", `Quick, test_variant_sweep);
    ("slew repair: never worse", `Quick, test_slew_repair);
    ("flow: counter compile", `Quick, test_flow_compile_counter);
    ("flow: ports preserved", `Quick, test_flow_ports_preserved);
    ("flow: aged mapping competitive", `Quick, test_aged_mapping_not_slower_aged);
    ("mapper: requires NAND2/INV", `Quick, test_mapper_needs_base_cells);
  ]

let props = [ prop_flow_equivalence_counter ]
