module Device = Aging_physics.Device
module Bti = Aging_physics.Bti
module Degradation = Aging_physics.Degradation
module Scenario = Aging_physics.Scenario

let check = Alcotest.(check (float 1e-12))

let test_duty_factor_ends () =
  check "lambda 0" 0. (Bti.duty_factor 0.);
  check "lambda 1" 1. (Bti.duty_factor 1.);
  Alcotest.(check bool) "half below 1" true (Bti.duty_factor 0.5 < 1.);
  Alcotest.(check bool) "half above dc share" true (Bti.duty_factor 0.5 > 0.5)

let prop_duty_monotone =
  Fixtures.qtest "duty factor monotone"
    QCheck2.Gen.(pair (float_range 0. 1.) (float_range 0. 1.))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Bti.duty_factor lo <= Bti.duty_factor hi +. 1e-12)

let test_traps_zero_cases () =
  let s0 = Bti.stress ~duty:0. () in
  check "no stress, no interface traps" 0. (Bti.interface_traps Device.Pmos s0);
  check "no stress, no oxide traps" 0. (Bti.oxide_traps Device.Pmos s0);
  let s1 = Bti.stress ~years:0. ~duty:1. () in
  check "no time, no traps" 0. (Bti.interface_traps Device.Pmos s1)

let test_pbti_weaker () =
  let s = Bti.stress ~duty:1. () in
  Alcotest.(check bool) "PBTI < NBTI" true
    (Bti.interface_traps Device.Nmos s < Bti.interface_traps Device.Pmos s);
  Fixtures.check_close ~tol:1e-9 "scale ratio"
    Bti.pbti_scale
    (Bti.interface_traps Device.Nmos s /. Bti.interface_traps Device.Pmos s)

let prop_traps_monotone_in_time =
  Fixtures.qtest "interface traps grow with time"
    QCheck2.Gen.(pair (float_range 0.1 10.) (float_range 0.1 10.))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      let traps years =
        Bti.interface_traps Device.Pmos (Bti.stress ~years ~duty:0.8 ())
      in
      traps lo <= traps hi +. 1e-3)

let test_stress_validation () =
  Alcotest.check_raises "duty range" (Invalid_argument "Bti.stress: duty outside [0,1]")
    (fun () -> ignore (Bti.stress ~duty:1.5 ()));
  Alcotest.check_raises "negative years" (Invalid_argument "Bti.stress: negative years")
    (fun () -> ignore (Bti.stress ~years:(-1.) ~duty:0.5 ()))

let test_degradation_magnitude () =
  (* Worst-case 10-year NBTI budget should be a realistic 45 nm number:
     tens of millivolts. *)
  let d =
    Degradation.of_stress (Device.pmos ~w:Device.w_min) (Bti.stress ~duty:1. ())
  in
  Alcotest.(check bool) "delta_vth in 40..120 mV" true
    (d.Degradation.delta_vth > 0.04 && d.Degradation.delta_vth < 0.12);
  Alcotest.(check bool) "mobility factor in (0.9, 1)" true
    (d.Degradation.mu_factor > 0.9 && d.Degradation.mu_factor < 1.

    )

let test_vth_only_mode () =
  let stress = Bti.stress ~duty:1. () in
  let d =
    Degradation.of_stress ~mode:Degradation.Vth_only (Device.pmos ~w:Device.w_min) stress
  in
  check "mu untouched" 1. d.Degradation.mu_factor;
  let full = Degradation.of_stress (Device.pmos ~w:Device.w_min) stress in
  check "same vth shift" full.Degradation.delta_vth d.Degradation.delta_vth

let test_apply () =
  let fresh = Device.nmos ~w:Device.w_min in
  let aged = Degradation.apply fresh (Bti.stress ~duty:1. ()) in
  Alcotest.(check bool) "vth grew" true
    (Device.effective_vth aged > Device.effective_vth fresh);
  Alcotest.(check bool) "mu shrank" true (aged.Device.mu_factor < 1.)

let test_with_aging_validation () =
  let d = Device.nmos ~w:Device.w_min in
  Alcotest.check_raises "negative shift"
    (Invalid_argument "Device.with_aging: negative delta_vth") (fun () ->
      ignore (Device.with_aging ~delta_vth:(-0.1) ~mu_factor:1. d));
  Alcotest.check_raises "mu range"
    (Invalid_argument "Device.with_aging: mu_factor outside (0,1]") (fun () ->
      ignore (Device.with_aging ~delta_vth:0.1 ~mu_factor:1.5 d))

let test_device_capacitances () =
  let d = Device.nmos ~w:Device.w_min in
  let d2 = Device.nmos ~w:(2. *. Device.w_min) in
  Alcotest.(check bool) "gate cap positive" true (Device.gate_capacitance d > 0.);
  Alcotest.(check bool) "gate cap grows with width" true
    (Device.gate_capacitance d2 > Device.gate_capacitance d);
  Alcotest.(check bool) "drain cap grows with width" true
    (Device.drain_capacitance d2 > Device.drain_capacitance d)

let test_grid () =
  Alcotest.(check int) "121 corners" 121 (List.length (Scenario.grid ()));
  Alcotest.(check int) "9 coarse corners" 9 (List.length (Scenario.grid ~step:0.5 ()));
  Alcotest.check_raises "bad step" (Invalid_argument "Scenario.grid: step does not divide 1")
    (fun () -> ignore (Scenario.grid ~step:0.3 ()))

let test_suffix_roundtrip () =
  List.iter
    (fun corner ->
      match Scenario.of_suffix (Scenario.suffix corner) with
      | Some c -> Alcotest.(check bool) "roundtrip" true (Scenario.equal c corner)
      | None -> Alcotest.fail "suffix did not parse")
    (Scenario.grid ())

let test_suffix_malformed () =
  Alcotest.(check bool) "garbage" true (Scenario.of_suffix "zz" = None);
  Alcotest.(check bool) "out of range" true (Scenario.of_suffix "1.5_0.2" = None);
  Alcotest.(check bool) "missing part" true (Scenario.of_suffix "0.4" = None)

let test_snap () =
  let c = Scenario.snap (Scenario.corner ~lambda_p:0.44 ~lambda_n:0.78) in
  check "snap p" 0.4 c.Scenario.lambda_p;
  check "snap n" 0.8 c.Scenario.lambda_n

let test_fresh_scenario_identity () =
  let scenario = Scenario.scenario Scenario.fresh in
  let fresh = Device.pmos ~w:Device.w_min in
  let aged = Scenario.age_device scenario fresh in
  check "no vth shift" 0. aged.Device.delta_vth;
  check "no mobility loss" 1. aged.Device.mu_factor

let test_defect_scale () =
  let stress = Bti.stress ~duty:1. () in
  let base = Degradation.of_stress (Device.pmos ~w:Device.w_min) stress in
  let bounded =
    Degradation.of_stress ~defect_scale:2. (Device.pmos ~w:Device.w_min) stress
  in
  Fixtures.check_close ~tol:1e-9 "vth scales with defect count"
    (2. *. base.Degradation.delta_vth) bounded.Degradation.delta_vth;
  Alcotest.(check bool) "mobility loss grows" true
    (bounded.Degradation.mu_factor < base.Degradation.mu_factor);
  Alcotest.check_raises "negative scale"
    (Invalid_argument "Degradation.of_stress: negative defect_scale")
    (fun () ->
      ignore (Degradation.of_stress ~defect_scale:(-1.) (Device.pmos ~w:Device.w_min) stress))

let test_scenario_defect_scale () =
  let plain = Scenario.scenario Scenario.worst_case in
  let bound = Scenario.scenario ~defect_scale:1.5 Scenario.worst_case in
  let vth scenario =
    (Scenario.age_device scenario (Device.pmos ~w:Device.w_min)).Device.delta_vth
  in
  Alcotest.(check bool) "6-sigma-style bound ages more" true (vth bound > vth plain)

let test_temperature_acceleration () =
  let cold = Bti.stress ~temp_k:300. ~duty:1. () in
  let hot = Bti.stress ~temp_k:400. ~duty:1. () in
  Alcotest.(check bool) "hotter ages faster" true
    (Bti.interface_traps Device.Pmos hot > Bti.interface_traps Device.Pmos cold)

let test_field_acceleration () =
  let low = Bti.stress ~vstress:0.9 ~duty:1. () in
  let high = Bti.stress ~vstress:1.3 ~duty:1. () in
  Alcotest.(check bool) "higher stress voltage ages faster" true
    (Bti.oxide_traps Device.Pmos high > Bti.oxide_traps Device.Pmos low)

let test_sublinear_time () =
  (* t^{1/6} kinetics: doubling the lifetime grows traps by far less
     than 2x. *)
  let t1 = Bti.interface_traps Device.Pmos (Bti.stress ~years:5. ~duty:1. ()) in
  let t2 = Bti.interface_traps Device.Pmos (Bti.stress ~years:10. ~duty:1. ()) in
  Alcotest.(check bool) "sublinear growth" true (t2 < 1.3 *. t1 && t2 > t1)

let test_corner_validation () =
  Alcotest.check_raises "range" (Invalid_argument "Scenario.corner: lambda_p outside [0,1]")
    (fun () -> ignore (Scenario.corner ~lambda_p:2. ~lambda_n:0.))

let suite =
  [
    ("bti: duty factor endpoints", `Quick, test_duty_factor_ends);
    ("bti: zero stress cases", `Quick, test_traps_zero_cases);
    ("bti: PBTI weaker than NBTI", `Quick, test_pbti_weaker);
    ("bti: stress validation", `Quick, test_stress_validation);
    ("degradation: worst-case magnitude", `Quick, test_degradation_magnitude);
    ("degradation: vth-only mode", `Quick, test_vth_only_mode);
    ("degradation: apply to device", `Quick, test_apply);
    ("device: with_aging validation", `Quick, test_with_aging_validation);
    ("device: capacitances", `Quick, test_device_capacitances);
    ("scenario: corner grid", `Quick, test_grid);
    ("scenario: suffix roundtrip", `Quick, test_suffix_roundtrip);
    ("scenario: malformed suffix", `Quick, test_suffix_malformed);
    ("scenario: snapping", `Quick, test_snap);
    ("scenario: fresh is identity", `Quick, test_fresh_scenario_identity);
    ("scenario: corner validation", `Quick, test_corner_validation);
    ("degradation: variability bound", `Quick, test_defect_scale);
    ("scenario: variability bound", `Quick, test_scenario_defect_scale);
    ("bti: temperature acceleration", `Quick, test_temperature_acceleration);
    ("bti: field acceleration", `Quick, test_field_acceleration);
    ("bti: sublinear time kinetics", `Quick, test_sublinear_time);
  ]

let props = [ prop_duty_monotone; prop_traps_monotone_in_time ]
