module N = Aging_netlist.Netlist
module Event_sim = Aging_sim.Event_sim
module Activity = Aging_sim.Activity
module Scenario = Aging_physics.Scenario
module Designs = Aging_designs.Designs
module Rng = Aging_util.Rng

let fresh () = Lazy.force Fixtures.fresh_library

let random_stimulus design seed =
  let rng = Rng.create seed in
  let vectors =
    Array.init 64 (fun _ ->
        List.map (fun (p, _) -> (p, Rng.bool rng)) design.N.input_ports)
  in
  fun n -> vectors.(n mod 64)

let test_event_sim_matches_reference_at_slow_clock () =
  List.iter
    (fun design ->
      let sim = Event_sim.prepare ~library:(fresh ()) design in
      let stimulus = random_stimulus design 5L in
      let period = 3. *. Event_sim.min_period sim in
      let trace = Event_sim.run sim ~period ~cycles:48 ~stimulus in
      let reference = Event_sim.run_functional design ~cycles:48 ~stimulus in
      Alcotest.(check int) "no timing errors" 0 trace.Event_sim.timing_errors;
      Array.iteri
        (fun i outs ->
          if List.sort compare outs <> List.sort compare reference.(i) then
            Alcotest.failf "%s: outputs diverge at cycle %d"
              design.N.design_name i)
        trace.Event_sim.outputs)
    [ Designs.counter ~bits:6; Designs.dsp () ]

let test_event_sim_errors_at_fast_clock () =
  let design = Designs.dsp () in
  let sim = Event_sim.prepare ~library:(fresh ()) design in
  let stimulus = random_stimulus design 7L in
  let trace =
    Event_sim.run sim ~period:(0.3 *. Event_sim.min_period sim) ~cycles:60
      ~stimulus
  in
  Alcotest.(check bool) "timing errors appear" true (trace.Event_sim.timing_errors > 0)

let test_event_sim_error_monotonicity () =
  let design = Designs.dsp () in
  let sim = Event_sim.prepare ~library:(fresh ()) design in
  let stimulus = random_stimulus design 9L in
  let errors frac =
    (Event_sim.run sim
       ~period:(frac *. Event_sim.min_period sim)
       ~cycles:60 ~stimulus).Event_sim.timing_errors
  in
  Alcotest.(check bool) "fewer errors at slower clock" true (errors 0.9 <= errors 0.35)

let test_event_sim_validation () =
  let design = Designs.counter ~bits:2 in
  let sim = Event_sim.prepare ~library:(fresh ()) design in
  Alcotest.check_raises "period" (Invalid_argument "Event_sim.run: period <= 0")
    (fun () ->
      ignore (Event_sim.run sim ~period:0. ~cycles:1 ~stimulus:(fun _ -> [ ("en", true) ])))

let test_activity_profile () =
  let design = Designs.counter ~bits:4 in
  let profile =
    Activity.profile design ~cycles:64 ~stimulus:(fun _ -> [ ("en", true) ])
  in
  Array.iter
    (fun p ->
      Alcotest.(check bool) "probability in range" true (p >= 0. && p <= 1.))
    profile.Activity.p_high;
  (* Counter bit 0 toggles every cycle: its probability is ~0.5. *)
  let _, q0 = List.hd design.N.output_ports in
  Alcotest.(check bool) "lsb near half" true
    (Float.abs (profile.Activity.p_high.(q0) -. 0.5) < 0.05);
  Alcotest.(check bool) "lsb toggles a lot" true (profile.Activity.toggles.(q0) > 30)

let test_activity_constant_input () =
  let design = Designs.counter ~bits:4 in
  let profile =
    Activity.profile design ~cycles:32 ~stimulus:(fun _ -> [ ("en", false) ])
  in
  let _, en_net = List.hd design.N.input_ports in
  Alcotest.(check (float 0.)) "disabled input stays low" 0.
    profile.Activity.p_high.(en_net)

let test_instance_corner_complementary () =
  let design = Designs.counter ~bits:4 in
  let profile =
    Activity.profile design ~cycles:64 ~stimulus:(fun _ -> [ ("en", true) ])
  in
  Array.iter
    (fun (inst : N.instance) ->
      if not (N.is_flipflop inst) && inst.N.inputs <> [] then begin
        let c = Activity.instance_corner profile inst in
        Fixtures.check_close ~tol:1e-9 "lambda_p + lambda_n = 1" 1.
          (c.Scenario.lambda_p +. c.Scenario.lambda_n)
      end)
    design.N.instances

let test_annotate_and_corners_used () =
  let design = Designs.counter ~bits:4 in
  let profile =
    Activity.profile design ~cycles:64 ~stimulus:(fun _ -> [ ("en", true) ])
  in
  let annotated = Activity.annotate design profile in
  Array.iter
    (fun (inst : N.instance) ->
      Alcotest.(check bool) "corner suffix present" true
        (String.contains inst.N.cell_name '@'))
    annotated.N.instances;
  let corners = Activity.corners_used annotated in
  Alcotest.(check bool) "at least one corner" true (corners <> []);
  let grid = Scenario.grid () in
  List.iter
    (fun c ->
      Alcotest.(check bool) "snapped to grid" true
        (List.exists (Scenario.equal c) grid))
    corners;
  Alcotest.(check bool) "functional behaviour unchanged" true
    (Fixtures.equivalent design annotated)

let test_activity_validation () =
  let design = Designs.counter ~bits:2 in
  Alcotest.check_raises "cycles" (Invalid_argument "Activity.profile: cycles <= 0")
    (fun () ->
      ignore (Activity.profile design ~cycles:0 ~stimulus:(fun _ -> [ ("en", true) ])))

let prop_event_sim_deterministic =
  Fixtures.qtest ~count:5 "event simulation is deterministic"
    QCheck2.Gen.int64
    (fun seed ->
      let design = Designs.counter ~bits:4 in
      let sim = Event_sim.prepare ~library:(Lazy.force Fixtures.fresh_library) design in
      let stimulus = random_stimulus design seed in
      let run () =
        (Event_sim.run sim ~period:2e-10 ~cycles:20 ~stimulus).Event_sim.outputs
      in
      run () = run ())

let suite =
  [
    ("event sim: matches reference at slow clock", `Quick,
      test_event_sim_matches_reference_at_slow_clock);
    ("event sim: errors at fast clock", `Quick, test_event_sim_errors_at_fast_clock);
    ("event sim: error monotonicity", `Quick, test_event_sim_error_monotonicity);
    ("event sim: validation", `Quick, test_event_sim_validation);
    ("activity: counter profile", `Quick, test_activity_profile);
    ("activity: constant input", `Quick, test_activity_constant_input);
    ("activity: complementary duty cycles", `Quick, test_instance_corner_complementary);
    ("activity: annotation", `Quick, test_annotate_and_corners_used);
    ("activity: validation", `Quick, test_activity_validation);
  ]

let props = [ prop_event_sim_deterministic ]
