module N = Aging_netlist.Netlist
module Builder = N.Builder
module Library = Aging_liberty.Library
module Timing = Aging_sta.Timing
module Paths = Aging_sta.Paths
module Report = Aging_sta.Report
module Designs = Aging_designs.Designs

let fresh () = Lazy.force Fixtures.fresh_library
let aged () = Lazy.force Fixtures.aged_library

(* A 4-inverter chain with a primary output. *)
let chain n =
  let b = Builder.create "chain" in
  let a = Builder.input b "a" in
  let rec go prev i =
    if i = 0 then prev
    else
      match Builder.cell b "INV_X1" ~inputs:[ ("A", prev) ] with
      | [ y ] -> go y (i - 1)
      | _ -> Alcotest.fail "arity"
  in
  Builder.output b "y" (go a n);
  Builder.finish b

let test_chain_analysis () =
  let nl = chain 4 in
  let analysis = Timing.analyze ~library:(fresh ()) nl in
  let period = Timing.min_period analysis in
  Alcotest.(check bool) "4 stages of 10..40 ps each" true
    (period > 4e-11 && period < 2e-10);
  let cp = Paths.critical analysis in
  Alcotest.(check int) "path length" 4 (List.length cp.Paths.steps);
  Alcotest.(check bool) "stage delays positive" true
    (List.for_all (fun (s : Paths.step) -> s.Paths.stage_delay > 0.) cp.Paths.steps)

let test_longer_chain_slower () =
  let p n = Timing.min_period (Timing.analyze ~library:(fresh ()) (chain n)) in
  Alcotest.(check bool) "monotone in depth" true (p 2 < p 4 && p 4 < p 8)

let test_aged_slower () =
  let nl = chain 6 in
  let f = Timing.min_period (Timing.analyze ~library:(fresh ()) nl) in
  let a = Timing.min_period (Timing.analyze ~library:(aged ()) nl) in
  Alcotest.(check bool) "aged period larger" true (a > f);
  Alcotest.(check bool) "guardband below 40%" true (a /. f < 1.4)

let test_output_load_config () =
  let nl = chain 2 in
  let p load =
    Timing.min_period
      (Timing.analyze
         ~config:{ Timing.default_config with Timing.output_load = load }
         ~library:(fresh ()) nl)
  in
  Alcotest.(check bool) "bigger output load is slower" true (p 1.6e-14 > p 1e-15)

let test_retime_matches_arrival () =
  (* Re-timing the critical path under the same library must reproduce the
     analysis arrival: same tables, same loads, same slews. *)
  let nl = Designs.counter ~bits:6 in
  let lib = fresh () in
  let analysis = Timing.analyze ~library:lib nl in
  let cp = Paths.critical analysis in
  let retimed =
    Paths.retime ~library:lib ~config:(Timing.config analysis) ~analysis cp
  in
  Fixtures.check_close ~tol:1e-13 "retime consistency"
    cp.Paths.endpoint.Timing.data_arrival retimed

let test_retime_aged_larger () =
  let nl = Designs.counter ~bits:6 in
  let analysis = Timing.analyze ~library:(fresh ()) nl in
  let cp = Paths.critical analysis in
  let fresh_d =
    Paths.retime ~library:(fresh ()) ~config:(Timing.config analysis) ~analysis cp
  in
  let aged_d =
    Paths.retime ~library:(aged ()) ~config:(Timing.config analysis) ~analysis cp
  in
  Alcotest.(check bool) "aged retime larger" true (aged_d > fresh_d)

let test_sequential_endpoints () =
  let nl = Designs.counter ~bits:4 in
  let analysis = Timing.analyze ~library:(fresh ()) nl in
  let endpoints = Timing.endpoints analysis in
  let has_ff =
    List.exists
      (fun (e : Timing.endpoint_timing) ->
        match e.Timing.endpoint with
        | Timing.Flipflop_d _ -> e.Timing.setup > 0.
        | Timing.Output_port _ -> false)
      endpoints
  in
  let po_setup_zero =
    List.for_all
      (fun (e : Timing.endpoint_timing) ->
        match e.Timing.endpoint with
        | Timing.Output_port _ -> e.Timing.setup = 0.
        | Timing.Flipflop_d _ -> true)
      endpoints
  in
  Alcotest.(check bool) "flip-flop endpoint with setup" true has_ff;
  Alcotest.(check bool) "output ports have no setup" true po_setup_zero;
  Alcotest.(check bool) "worst first" true
    (match endpoints with
    | a :: b :: _ ->
      a.Timing.data_arrival +. a.Timing.setup
      >= b.Timing.data_arrival +. b.Timing.setup
    | _ -> true)

let test_structure_reuse () =
  let nl = Designs.counter ~bits:5 in
  let structure = Timing.prepare_structure nl in
  let direct = Timing.min_period (Timing.analyze ~library:(fresh ()) nl) in
  let via = Timing.min_period (Timing.analyze ~structure ~library:(fresh ()) nl) in
  Fixtures.check_close ~tol:0. "same result through cached structure" direct via

let test_missing_cell_fails () =
  let nl = chain 2 in
  let tiny =
    Library.create ~lib_name:"tiny" ~axes:Aging_liberty.Axes.coarse
      [ Library.find_exn (fresh ()) "NAND2_X1" ]
  in
  try
    ignore (Timing.analyze ~library:tiny nl);
    Alcotest.fail "missing cell accepted"
  with Failure _ -> ()

let test_report_strings () =
  let nl = Designs.counter ~bits:4 in
  let f = Timing.analyze ~library:(fresh ()) nl in
  let a = Timing.analyze ~library:(aged ()) nl in
  let s = Report.summary f in
  Alcotest.(check bool) "summary mentions design" true
    (String.length s > 0
    && String.length (Report.guardband ~fresh:f ~aged:a) > 0)

let test_min_arrival_and_hold () =
  let nl = Designs.counter ~bits:6 in
  let analysis = Timing.analyze ~library:(fresh ()) nl in
  (* Earliest never exceeds latest on any reachable net. *)
  for net = 0 to nl.N.n_nets - 1 do
    List.iter
      (fun dir ->
        let late = Timing.arrival analysis net dir in
        let early = Timing.min_arrival analysis net dir in
        if late > neg_infinity && early < infinity then
          Alcotest.(check bool) "early <= late" true (early <= late +. 1e-15))
      [ Library.Rise; Library.Fall ]
  done;
  let slacks = Timing.hold_slacks analysis in
  Alcotest.(check int) "one hold slack per flip-flop" 6 (List.length slacks);
  Alcotest.(check bool) "worst hold is the minimum" true
    (List.for_all
       (fun (_, s) -> s >= Timing.worst_hold_slack analysis -. 1e-15)
       slacks)

let test_hold_aging_side () =
  (* Counter bit 0's D comes straight back from an inverter: short path. *)
  let nl = Designs.counter ~bits:6 in
  let f = Timing.analyze ~library:(fresh ()) nl in
  let a = Timing.analyze ~library:(aged ()) nl in
  Alcotest.(check bool) "hold slacks finite both ways" true
    (Timing.worst_hold_slack f < infinity && Timing.worst_hold_slack a < infinity)

let test_provenance_sources () =
  let nl = chain 2 in
  let analysis = Timing.analyze ~library:(fresh ()) nl in
  let _, input_net = List.hd nl.N.input_ports in
  Alcotest.(check bool) "inputs are start points" true
    (Timing.provenance analysis input_net Library.Rise = None)

let prop_arrival_dominates_stages =
  Fixtures.qtest ~count:20 "endpoint arrival equals the sum of its stage delays"
    QCheck2.Gen.(int_range 2 8)
    (fun depth ->
      let nl = chain depth in
      let analysis = Timing.analyze ~library:(Lazy.force Fixtures.fresh_library) nl in
      let cp = Paths.critical analysis in
      let total =
        List.fold_left (fun acc (s : Paths.step) -> acc +. s.Paths.stage_delay) 0.
          cp.Paths.steps
      in
      Float.abs (total -. cp.Paths.total) < 1e-13)

let suite =
  [
    ("sta: inverter chain", `Quick, test_chain_analysis);
    ("sta: depth monotone", `Quick, test_longer_chain_slower);
    ("sta: aged library slower", `Quick, test_aged_slower);
    ("sta: output load config", `Quick, test_output_load_config);
    ("paths: retime consistency", `Quick, test_retime_matches_arrival);
    ("paths: aged retime larger", `Quick, test_retime_aged_larger);
    ("sta: sequential endpoints", `Quick, test_sequential_endpoints);
    ("sta: structure cache", `Quick, test_structure_reuse);
    ("sta: missing cell", `Quick, test_missing_cell_fails);
    ("sta: reports", `Quick, test_report_strings);
    ("sta: provenance of sources", `Quick, test_provenance_sources);
    ("sta: min arrivals and hold slacks", `Quick, test_min_arrival_and_hold);
    ("sta: hold under aging", `Quick, test_hold_aging_side);
  ]

let props = [ prop_arrival_dominates_stages ]
