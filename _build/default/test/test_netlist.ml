module N = Aging_netlist.Netlist
module Builder = N.Builder
module Designs = Aging_designs.Designs

let test_counter_counts () =
  let counter = Designs.counter ~bits:4 in
  let compiled = N.compile counter in
  let state = ref (N.initial_state counter) in
  let read outs =
    List.fold_left
      (fun acc i ->
        if List.assoc (Printf.sprintf "count[%d]" i) outs then acc lor (1 lsl i)
        else acc)
      0 [ 0; 1; 2; 3 ]
  in
  let step en =
    let outs, next = N.compiled_cycle compiled !state ~inputs:[ ("en", en) ] in
    state := next;
    read outs
  in
  Alcotest.(check int) "starts at 0" 0 (step true);
  Alcotest.(check int) "one" 1 (step true);
  Alcotest.(check int) "two" 2 (step true);
  Alcotest.(check int) "hold when disabled" 3 (step false);
  Alcotest.(check int) "still three" 3 (step true);
  for _ = 1 to 12 do
    ignore (step true)
  done;
  Alcotest.(check int) "wraps modulo 16" 0 (step true)

let test_builder_errors () =
  let b = Builder.create "t" in
  let a = Builder.input b "a" in
  (try
     ignore (Builder.cell b "NOCELL_X1" ~inputs:[ ("A", a) ]);
     Alcotest.fail "unknown cell accepted"
   with Failure _ -> ());
  try
    ignore (Builder.cell b "NAND2_X1" ~inputs:[ ("A1", a) ]);
    Alcotest.fail "missing pin accepted"
  with Failure _ -> ()

let test_multiple_drivers_rejected () =
  let b = Builder.create "t" in
  let a = Builder.input b "a" in
  (match Builder.cell b "INV_X1" ~inputs:[ ("A", a) ] with
  | [ y ] ->
    Builder.cell_into b "INV_X1" ~inputs:[ ("A", a) ] ~outputs:[ ("Y", y) ];
    Builder.output b "y" y
  | _ -> Alcotest.fail "arity");
  try
    ignore (Builder.finish b);
    Alcotest.fail "double driver accepted"
  with Failure _ -> ()

let test_flipflop_needs_clock () =
  let b = Builder.create "t" in
  let a = Builder.input b "a" in
  try
    ignore (Builder.cell b "DFF_X1" ~inputs:[ ("D", a) ]);
    Alcotest.fail "flip-flop without clock accepted"
  with Failure _ -> ()

let test_combinational_cycle_detected () =
  let b = Builder.create "loop" in
  let x = Builder.fresh_net b in
  (match Builder.cell b "INV_X1" ~inputs:[ ("A", x) ] with
  | [ y ] -> Builder.cell_into b "INV_X1" ~inputs:[ ("A", y) ] ~outputs:[ ("Y", x) ]
  | _ -> Alcotest.fail "arity");
  Builder.output b "y" x;
  let nl = Builder.finish b in
  try
    ignore (N.combinational_order nl);
    Alcotest.fail "cycle not detected"
  with Failure _ -> ()

let test_base_cell_name () =
  Alcotest.(check string) "strips corner" "NAND2_X1" (N.base_cell_name "NAND2_X1@0.4_0.6");
  Alcotest.(check string) "plain" "INV_X2" (N.base_cell_name "INV_X2")

let test_structure_queries () =
  let dsp = Designs.dsp () in
  Alcotest.(check bool) "has flip-flops" true (N.flipflops dsp <> []);
  Alcotest.(check bool) "area positive" true (N.area dsp > 0.);
  let counts = N.count_cells dsp in
  Alcotest.(check bool) "counts non-empty" true (counts <> []);
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 counts in
  Alcotest.(check int) "counts cover instances" (Array.length dsp.N.instances) total

let test_driver_and_fanout () =
  let counter = Designs.counter ~bits:2 in
  let _, q0 = List.hd counter.N.output_ports in
  (match N.driver_of counter q0 with
  | Some (inst, _) ->
    Alcotest.(check bool) "driven by flip-flop" true (N.is_flipflop inst)
  | None -> Alcotest.fail "output not driven");
  Alcotest.(check bool) "fanout exists" true (N.fanout_of counter q0 <> [])

let test_rename_cells () =
  let counter = Designs.counter ~bits:2 in
  let renamed = N.rename_cells (fun i -> i.N.cell_name ^ "@1.0_1.0") counter in
  Array.iter
    (fun (inst : N.instance) ->
      Alcotest.(check bool) "suffix applied" true (String.contains inst.N.cell_name '@'))
    renamed.N.instances;
  (* Still resolvable through the base-name fallback. *)
  Alcotest.(check bool) "catalog resolution" true
    (Array.for_all
       (fun inst -> (N.catalog_cell inst).Aging_cells.Cell.name <> "")
       renamed.N.instances)

let prop_compiled_matches_uncompiled =
  Fixtures.qtest ~count:30 "compiled evaluator = direct evaluator"
    QCheck2.Gen.(array_size (QCheck2.Gen.return 8) bool)
    (fun bits ->
      let dsp = Designs.dsp () in
      let inputs =
        List.concat
          [
            List.init 8 (fun i -> (Printf.sprintf "a[%d]" i, bits.(i)));
            List.init 8 (fun i -> (Printf.sprintf "x[%d]" i, bits.(7 - i)));
            [ ("clr", false) ];
          ]
      in
      let state = N.initial_state dsp in
      let a = N.eval_cycle dsp state ~inputs in
      let b = N.compiled_cycle (N.compile dsp) state ~inputs in
      a = b)

let test_eval_missing_input () =
  let counter = Designs.counter ~bits:2 in
  try
    ignore (N.eval_cycle counter (N.initial_state counter) ~inputs:[]);
    Alcotest.fail "missing input accepted"
  with Failure _ -> ()

let test_eval_combinational_guard () =
  let counter = Designs.counter ~bits:2 in
  Alcotest.check_raises "sequential rejected"
    (Invalid_argument "Netlist.eval_combinational: netlist has flip-flops")
    (fun () -> ignore (N.eval_combinational counter ~inputs:[ ("en", true) ]))

let suite =
  [
    ("eval: counter behaviour", `Quick, test_counter_counts);
    ("builder: bad cells rejected", `Quick, test_builder_errors);
    ("builder: multiple drivers rejected", `Quick, test_multiple_drivers_rejected);
    ("builder: flip-flop needs clock", `Quick, test_flipflop_needs_clock);
    ("order: combinational cycle detected", `Quick, test_combinational_cycle_detected);
    ("names: base cell name", `Quick, test_base_cell_name);
    ("queries: structure", `Quick, test_structure_queries);
    ("queries: driver and fanout", `Quick, test_driver_and_fanout);
    ("transform: rename cells", `Quick, test_rename_cells);
    ("eval: missing input", `Quick, test_eval_missing_input);
    ("eval: combinational guard", `Quick, test_eval_combinational_guard);
  ]

let props = [ prop_compiled_matches_uncompiled ]
