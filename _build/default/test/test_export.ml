module N = Aging_netlist.Netlist
module Export = Aging_netlist.Export
module Sdf = Aging_sta.Sdf
module Timing = Aging_sta.Timing
module Liberty_format = Aging_liberty.Liberty_format
module Designs = Aging_designs.Designs

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_verilog_structure () =
  let nl = Designs.counter ~bits:3 in
  let v = Export.to_verilog nl in
  Alcotest.(check bool) "module header" true (contains ~needle:"module counter" v);
  Alcotest.(check bool) "clock port" true (contains ~needle:"input clk;" v);
  Alcotest.(check bool) "output port" true (contains ~needle:"output count_0;" v);
  Alcotest.(check bool) "named connections" true (contains ~needle:".D(" v);
  Alcotest.(check bool) "endmodule" true (contains ~needle:"endmodule" v);
  (* One instantiation line per instance. *)
  let lines = String.split_on_char '\n' v in
  let inst_lines =
    List.filter (fun l -> contains ~needle:"_X" l && contains ~needle:"(." l) lines
  in
  Alcotest.(check int) "instance count" (Array.length nl.N.instances)
    (List.length inst_lines)

let test_verilog_sanitization () =
  Alcotest.(check string) "indexed cell" "NAND2_X1_c0p4_0p6"
    (Export.sanitize_identifier "NAND2_X1@0.4_0.6");
  Alcotest.(check string) "bus bit" "count_3" (Export.sanitize_identifier "count[3]")

let test_sdf_structure () =
  let nl = Designs.counter ~bits:3 in
  let analysis =
    Timing.analyze ~library:(Lazy.force Fixtures.fresh_library) nl
  in
  let sdf = Sdf.to_sdf analysis in
  Alcotest.(check bool) "header" true (contains ~needle:"(DELAYFILE" sdf);
  Alcotest.(check bool) "design name" true (contains ~needle:"\"counter\"" sdf);
  Alcotest.(check bool) "iopath entries" true (contains ~needle:"(IOPATH" sdf);
  Alcotest.(check bool) "flip-flop clk->q arc" true (contains ~needle:"(IOPATH CK Q" sdf);
  (* Delays are positive ns values. *)
  Alcotest.(check bool) "no negative ns triples" true
    (not (contains ~needle:"(-" sdf))

let test_liberty_emission () =
  let lib = Lazy.force Fixtures.fresh_library in
  let text = Liberty_format.to_liberty lib in
  Alcotest.(check bool) "library group" true (contains ~needle:"library (" text);
  Alcotest.(check bool) "template" true
    (contains ~needle:"lu_table_template (delay_template)" text);
  Alcotest.(check bool) "cell group" true (contains ~needle:"cell (NAND2_X1)" text);
  Alcotest.(check bool) "timing sense" true
    (contains ~needle:"timing_sense : negative_unate" text);
  Alcotest.(check bool) "ff group for DFF" true
    (contains ~needle:"ff (IQ, IQN)" text);
  Alcotest.(check bool) "setup constraint" true
    (contains ~needle:"timing_type : setup_rising" text);
  Alcotest.(check bool) "when condition on side inputs" true
    (contains ~needle:"when :" text)

let test_liberty_sanitize () =
  Alcotest.(check string) "corner name" "AND2_X1_c0p4_0p6"
    (Liberty_format.sanitize_name "AND2_X1@0.4_0.6")

let suite =
  [
    ("verilog: structure", `Quick, test_verilog_structure);
    ("verilog: identifier sanitization", `Quick, test_verilog_sanitization);
    ("sdf: structure", `Quick, test_sdf_structure);
    ("liberty: emission", `Quick, test_liberty_emission);
    ("liberty: name sanitization", `Quick, test_liberty_sanitize);
  ]

let props = []
