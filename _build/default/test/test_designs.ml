module N = Aging_netlist.Netlist
module Designs = Aging_designs.Designs
module Dct = Aging_image.Dct
module Rng = Aging_util.Rng

let bits_of v w = List.init w (fun i -> (v asr i) land 1 = 1)

let vec_inputs prefix w values =
  List.concat
    (List.mapi
       (fun lane v ->
         List.mapi
           (fun bit b -> (Printf.sprintf "%s%d[%d]" prefix lane bit, b))
           (bits_of (v land ((1 lsl w) - 1)) w))
       values)

let read_signed outs name w =
  let raw =
    List.fold_left
      (fun acc bit ->
        if List.assoc (Printf.sprintf "%s[%d]" name bit) outs then
          acc lor (1 lsl bit)
        else acc)
      0
      (List.init w Fun.id)
  in
  if raw >= 1 lsl (w - 1) then raw - (1 lsl w) else raw

let run_cycles design inputs_per_cycle =
  let compiled = N.compile design in
  let state = ref (N.initial_state design) in
  List.map
    (fun inputs ->
      let outs, next = N.compiled_cycle compiled !state ~inputs in
      state := next;
      outs)
    inputs_per_cycle

let test_all_designs_build () =
  List.iter
    (fun (name, nl) ->
      Alcotest.(check bool) (name ^ " has cells") true
        (Array.length nl.N.instances > 100);
      Alcotest.(check bool) (name ^ " has flip-flops") true (N.flipflops nl <> []);
      (* Building implies a legal netlist; also require acyclic logic. *)
      Alcotest.(check bool) (name ^ " acyclic") true
        (N.combinational_order nl <> []))
    (Designs.all ())

let transform_matches ~inverse vector =
  let design = if inverse then Designs.idct () else Designs.dct () in
  let w = Designs.transform_io_width in
  let inputs = vec_inputs "I" w vector in
  let outs = run_cycles design [ inputs; inputs; inputs ] in
  let final = List.nth outs 2 in
  let got = Array.init 8 (fun i -> read_signed final (Printf.sprintf "O%d" i) w) in
  let expect =
    if inverse then Dct.inverse_1d (Array.of_list vector)
    else Dct.forward_1d (Array.of_list vector)
  in
  got = expect

let test_dct_circuit_exact () =
  Alcotest.(check bool) "dct circuit = reference" true
    (transform_matches ~inverse:false [ 12; -50; 100; 127; -128; 3; 77; -1 ]);
  Alcotest.(check bool) "idct circuit = reference" true
    (transform_matches ~inverse:true [ 360; -12; 45; 0; -100; 5; 9; -77 ])

let prop_dct_circuit_random =
  Fixtures.qtest ~count:8 "dct circuit bit-exact on random vectors"
    QCheck2.Gen.(list_size (QCheck2.Gen.return 8) (int_range (-128) 127))
    (fun vector -> transform_matches ~inverse:false vector)

let test_dsp_mac () =
  let design = Designs.dsp () in
  let inputs a x clr =
    vec_inputs "" 0 [] @ []
    |> fun _ ->
    List.concat
      [
        List.mapi (fun i b -> (Printf.sprintf "a[%d]" i, b)) (bits_of a 8);
        List.mapi (fun i b -> (Printf.sprintf "x[%d]" i, b)) (bits_of x 8);
        [ ("clr", clr) ];
      ]
  in
  (* Feed 7*11 for enough cycles to fill the pipeline and accumulate. *)
  let cycles = List.init 8 (fun _ -> inputs 7 11 false) in
  let outs = run_cycles design cycles in
  let acc_at k =
    let o = List.nth outs k in
    List.fold_left
      (fun acc bit ->
        if List.assoc (Printf.sprintf "acc[%d]" bit) o then acc lor (1 lsl bit)
        else acc)
      0 (List.init 20 Fun.id)
  in
  (* Products reach the accumulator with 2 cycles of latency; from then on
     it grows by 77 per cycle. *)
  let a3 = acc_at 3 and a4 = acc_at 4 and a5 = acc_at 5 in
  Alcotest.(check int) "accumulates product" 77 (a4 - a3);
  Alcotest.(check int) "keeps accumulating" 77 (a5 - a4)

let test_dsp_clear () =
  let design = Designs.dsp () in
  let inputs clr =
    List.concat
      [
        List.mapi (fun i b -> (Printf.sprintf "a[%d]" i, b)) (bits_of 5 8);
        List.mapi (fun i b -> (Printf.sprintf "x[%d]" i, b)) (bits_of 5 8);
        [ ("clr", clr) ];
      ]
  in
  let cycles = List.init 6 (fun _ -> inputs false) @ [ inputs true; inputs true ] in
  let outs = run_cycles design cycles in
  let acc_of o =
    List.fold_left
      (fun acc bit ->
        if List.assoc (Printf.sprintf "acc[%d]" bit) o then acc lor (1 lsl bit)
        else acc)
      0 (List.init 20 Fun.id)
  in
  let before = acc_of (List.nth outs 5) in
  let after = acc_of (List.nth outs 7) in
  Alcotest.(check bool) "accumulated something" true (before > 0);
  (* After clear the accumulator restarts from one product. *)
  Alcotest.(check bool) "clear resets" true (after <= 25 + 25)

(* RISC instruction encoding helper (see Designs doc): [15]=we, [14:12]=op,
   [11:9]=rd, [8:6]=ra, [5:3]=rb, [2]=use_imm, [5:0]=imm6. *)
let encode ~we ~op ~rd ~ra ~rb ~imm ~use_imm =
  let imm6 = imm land 0x3f in
  let base =
    ((if we then 1 else 0) lsl 15) lor (op lsl 12) lor (rd lsl 9) lor (ra lsl 6)
  in
  if use_imm then base lor imm6 lor 0b100
  else base lor (rb lsl 3)

let risc_inputs word =
  List.mapi (fun i b -> (Printf.sprintf "instr[%d]" i, b)) (bits_of word 16)

let read_result outs =
  List.fold_left
    (fun acc bit ->
      if List.assoc (Printf.sprintf "result[%d]" bit) outs then acc lor (1 lsl bit)
      else acc)
    0 (List.init 16 Fun.id)

let test_risc5_program () =
  let design = Designs.risc5 () in
  let nop = encode ~we:false ~op:0 ~rd:0 ~ra:0 ~rb:0 ~imm:0 ~use_imm:false in
  (* r1 = r0 + 12; r2 = r1 + 12; r3 = r1 + r2 (= 36). *)
  let prog =
    [
      encode ~we:true ~op:0 ~rd:1 ~ra:0 ~rb:0 ~imm:12 ~use_imm:true;
      nop; nop; nop; nop;
      encode ~we:true ~op:0 ~rd:2 ~ra:1 ~rb:0 ~imm:12 ~use_imm:true;
      nop; nop; nop; nop;
      encode ~we:true ~op:0 ~rd:3 ~ra:1 ~rb:2 ~imm:0 ~use_imm:false;
      nop; nop; nop; nop; nop; nop;
    ]
  in
  let outs = run_cycles design (List.map risc_inputs prog) in
  (* The add writing r2 exits WB a few cycles after issue; scan for the
     expected values appearing on the result port. *)
  let results = List.map read_result outs in
  Alcotest.(check bool) "r1 value seen" true (List.mem 12 results);
  Alcotest.(check bool) "r2 value seen" true (List.mem 24 results);
  Alcotest.(check bool) "r1+r2 seen" true (List.mem 36 results)

let test_risc6_program () =
  let design = Designs.risc6 () in
  let nop = encode ~we:false ~op:0 ~rd:0 ~ra:0 ~rb:0 ~imm:0 ~use_imm:false in
  let prog =
    [
      encode ~we:true ~op:0 ~rd:1 ~ra:0 ~rb:0 ~imm:12 ~use_imm:true;
      nop; nop; nop; nop; nop;
      encode ~we:true ~op:4 ~rd:2 ~ra:1 ~rb:1 ~imm:0 ~use_imm:false; (* xor -> 0 *)
      nop; nop; nop; nop; nop; nop; nop;
    ]
  in
  let outs = run_cycles design (List.map risc_inputs prog) in
  let results = List.map read_result outs in
  Alcotest.(check bool) "constant written" true (List.mem 12 results)

let test_vliw_dual_issue () =
  let design = Designs.vliw () in
  let nop = encode ~we:false ~op:0 ~rd:0 ~ra:0 ~rb:0 ~imm:0 ~use_imm:false in
  let slot0 = encode ~we:true ~op:0 ~rd:1 ~ra:0 ~rb:0 ~imm:5 ~use_imm:true in
  let slot1 = encode ~we:true ~op:0 ~rd:2 ~ra:0 ~rb:0 ~imm:13 ~use_imm:true in
  let inputs s0 s1 =
    List.concat
      [
        List.mapi (fun i b -> (Printf.sprintf "slot0[%d]" i, b)) (bits_of s0 16);
        List.mapi (fun i b -> (Printf.sprintf "slot1[%d]" i, b)) (bits_of s1 16);
      ]
  in
  let cycles = [ inputs slot0 slot1 ] @ List.init 5 (fun _ -> inputs nop nop) in
  let outs = run_cycles design cycles in
  let read name o =
    List.fold_left
      (fun acc bit ->
        if List.assoc (Printf.sprintf "%s[%d]" name bit) o then acc lor (1 lsl bit)
        else acc)
      0 (List.init 16 Fun.id)
  in
  let lane0 = List.map (read "r0") outs and lane1 = List.map (read "r1") outs in
  Alcotest.(check bool) "lane 0 result" true (List.mem 5 lane0);
  Alcotest.(check bool) "lane 1 result" true (List.mem 13 lane1)

let test_fft_butterfly () =
  let design = Designs.fft () in
  let w = 12 in
  let inputs ar ai br bi =
    List.concat
      [
        List.mapi (fun i b -> (Printf.sprintf "ar[%d]" i, b)) (bits_of ar w);
        List.mapi (fun i b -> (Printf.sprintf "ai[%d]" i, b)) (bits_of ai w);
        List.mapi (fun i b -> (Printf.sprintf "br[%d]" i, b)) (bits_of br w);
        List.mapi (fun i b -> (Printf.sprintf "bi[%d]" i, b)) (bits_of bi w);
      ]
  in
  let ar = 100 and ai = -50 and br = 30 and bi = 60 in
  let cycles = List.init 3 (fun _ -> inputs ar ai br bi) in
  let outs = run_cycles design cycles in
  let final = List.nth outs 2 in
  (* Reference: W = (45 - 45j)/64, b' = W*b >> 6 with flooring asr. *)
  let brot = ((45 * br) + (45 * bi)) asr 6 in
  let birot = ((45 * bi) - (45 * br)) asr 6 in
  Alcotest.(check int) "x0r" (ar + brot) (read_signed final "x0r" w);
  Alcotest.(check int) "x0i" (ai + birot) (read_signed final "x0i" w);
  Alcotest.(check int) "x1r" (ar - brot) (read_signed final "x1r" w);
  Alcotest.(check int) "x1i" (ai - birot) (read_signed final "x1i" w)

let test_fast_adder_matches_ripple () =
  (* Bv.add_fast against integer addition via a dedicated netlist. *)
  let module Builder = N.Builder in
  let module Bv = Aging_designs.Bv in
  let b = Builder.create "addcheck" in
  let c = Bv.ctx b in
  let x = Bv.input c "x" 10 and y = Bv.input c "y" 10 in
  Bv.output c "s" (Bv.add_fast c x y);
  Bv.output c "r" (Bv.add c x y);
  let nl = Builder.finish b in
  let rng = Rng.create 3L in
  for _ = 1 to 50 do
    let xv = Rng.int rng 1024 and yv = Rng.int rng 1024 in
    let inputs =
      List.concat
        [
          List.mapi (fun i b -> (Printf.sprintf "x[%d]" i, b)) (bits_of xv 10);
          List.mapi (fun i b -> (Printf.sprintf "y[%d]" i, b)) (bits_of yv 10);
        ]
    in
    let outs = N.eval_combinational nl ~inputs in
    let read name =
      List.fold_left
        (fun acc bit ->
          if List.assoc (Printf.sprintf "%s[%d]" name bit) outs then
            acc lor (1 lsl bit)
          else acc)
        0 (List.init 10 Fun.id)
    in
    Alcotest.(check int) "fast = truncated sum" ((xv + yv) land 1023) (read "s");
    Alcotest.(check int) "fast = ripple" (read "r") (read "s")
  done

let test_by_name () =
  Alcotest.(check bool) "lookup" true (Designs.by_name "VLIW" <> None);
  Alcotest.(check bool) "unknown" true (Designs.by_name "GPU" = None)

let suite =
  [
    ("designs: all build", `Quick, test_all_designs_build);
    ("designs: DCT/IDCT circuits exact", `Quick, test_dct_circuit_exact);
    ("designs: DSP accumulates", `Quick, test_dsp_mac);
    ("designs: DSP clear", `Quick, test_dsp_clear);
    ("designs: RISC-5P program", `Quick, test_risc5_program);
    ("designs: RISC-6P program", `Quick, test_risc6_program);
    ("designs: VLIW dual issue", `Quick, test_vliw_dual_issue);
    ("designs: FFT butterfly", `Quick, test_fft_butterfly);
    ("designs: fast adder correct", `Quick, test_fast_adder_matches_ripple);
    ("designs: registry", `Quick, test_by_name);
  ]

let props = [ prop_dct_circuit_random ]
