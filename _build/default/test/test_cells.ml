module Device = Aging_physics.Device
module Circuit = Aging_spice.Circuit
module Engine = Aging_spice.Engine
module Stimulus = Aging_spice.Stimulus
module Cell = Aging_cells.Cell
module Catalog = Aging_cells.Catalog

let test_catalog_size () =
  Alcotest.(check bool) "at least 60 cells" true (List.length (Catalog.all ()) >= 60);
  Alcotest.(check bool) "at least 25 families" true
    (List.length (Catalog.families ()) >= 25)

let test_find () =
  Alcotest.(check bool) "NAND2_X1 exists" true (Catalog.find "NAND2_X1" <> None);
  Alcotest.(check bool) "high-beta variant exists" true (Catalog.find "NAND2_X1H" <> None);
  Alcotest.(check bool) "unknown" true (Catalog.find "NAND9_X1" = None);
  Alcotest.check_raises "find_exn" Not_found (fun () ->
      ignore (Catalog.find_exn "NAND9_X1"))

let test_variants_sorted () =
  let drives =
    List.map (fun (c : Cell.t) -> c.Cell.drive) (Catalog.variants "INV")
  in
  Alcotest.(check bool) "weakest first" true (List.sort compare drives = drives);
  Alcotest.(check bool) "several variants" true (List.length drives >= 4)

(* Transistor netlist vs declared logic function, across all input
   combinations, via DC transient settling. *)
let steady_state_matches (cell : Cell.t) =
  let n = List.length cell.Cell.inputs in
  let combos = List.init (1 lsl n) (fun k -> List.init n (fun i -> k land (1 lsl i) <> 0)) in
  List.for_all
    (fun combo ->
      let expected = cell.Cell.logic combo in
      let drives =
        List.map2
          (fun pin v ->
            ( List.assoc pin cell.Cell.built.input_nodes,
              Stimulus.constant (if v then Device.vdd else 0.) ))
          cell.Cell.inputs combo
      in
      let r = Engine.transient cell.Cell.built.circuit ~drives ~t_stop:2e-10 in
      List.for_all2
        (fun (_, node) want ->
          let v = Engine.final_voltage r node in
          (v > Device.vdd /. 2.) = want)
        cell.Cell.built.output_nodes expected)
    combos

let test_truth_tables_sample () =
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " matches its logic") true
        (steady_state_matches (Catalog.find_exn name)))
    [ "INV_X1"; "NAND3_X1"; "NOR2_X1H"; "AOI21_X1"; "OAI22_X1"; "XOR2_X1";
      "XNOR2_X1"; "MUX2_X1"; "FA_X1"; "HA_X1"; "AOI211_X1"; "TIELO_X1";
      "TIEHI_X1" ]

let test_truth_tables_all () =
  List.iter
    (fun (cell : Cell.t) ->
      if cell.Cell.kind = Cell.Combinational then
        Alcotest.(check bool) (cell.Cell.name ^ " matches its logic") true
          (steady_state_matches cell))
    (Catalog.all ())

let test_arc_counts () =
  let count name = List.length (Cell.arcs (Catalog.find_exn name)) in
  Alcotest.(check int) "INV" 1 (count "INV_X1");
  Alcotest.(check int) "NAND2" 2 (count "NAND2_X1");
  Alcotest.(check int) "MUX2" 3 (count "MUX2_X1");
  Alcotest.(check int) "FA = 3 inputs x 2 outputs" 6 (count "FA_X1");
  Alcotest.(check int) "DFF launch arcs" 2 (count "DFF_X1");
  Alcotest.(check int) "TIELO has none" 0 (count "TIELO_X1")

let test_unateness () =
  let arc cell = List.hd (Cell.arcs (Catalog.find_exn cell)) in
  Alcotest.(check bool) "INV negative" false (arc "INV_X1").Cell.positive_unate;
  Alcotest.(check bool) "AND2 positive" true (arc "AND2_X1").Cell.positive_unate;
  Alcotest.(check bool) "NAND2 negative" false (arc "NAND2_X1").Cell.positive_unate

let test_sensitizing_side_values () =
  let arcs = Cell.arcs (Catalog.find_exn "AOI21_X1") in
  (* Y = !(A1 A2 + B): the A1 arc needs A2 = 1 and B = 0. *)
  let a1 = List.find (fun (a : Cell.arc) -> a.Cell.arc_input = "A1") arcs in
  Alcotest.(check bool) "A2 high" true (List.assoc "A2" a1.Cell.side);
  Alcotest.(check bool) "B low" false (List.assoc "B" a1.Cell.side)

let test_input_capacitance () =
  let cap name pin = Cell.input_capacitance (Catalog.find_exn name) pin in
  Alcotest.(check bool) "positive" true (cap "NAND2_X1" "A1" > 0.);
  Alcotest.(check bool) "drive scales pin cap" true
    (cap "NAND2_X4" "A1" > cap "NAND2_X1" "A1");
  Alcotest.(check bool) "flip-flop D pin has junction cap" true
    (cap "DFF_X1" "D" > 0.);
  Alcotest.check_raises "unknown pin" Not_found (fun () ->
      ignore (cap "NAND2_X1" "Z9"))

let test_area_model () =
  let area name = (Catalog.find_exn name).Cell.area in
  Alcotest.(check bool) "positive" true (area "INV_X1" > 0.);
  Alcotest.(check bool) "grows with drive" true (area "INV_X4" > area "INV_X1");
  Alcotest.(check bool) "high-beta slightly larger" true
    (area "NAND2_X1H" > area "NAND2_X1");
  Alcotest.(check bool) "complex > simple" true (area "FA_X1" > area "NAND2_X1")

let test_high_beta_widths () =
  (* The H variant widens only the pull-up network. *)
  let width pol name =
    List.fold_left
      (fun acc (m : Circuit.mos) ->
        if m.Circuit.dev.Device.polarity = pol then acc +. m.Circuit.dev.Device.w
        else acc)
      0.
      (Circuit.mosfets (Catalog.find_exn name).Cell.built.circuit)
  in
  Alcotest.(check bool) "pmos wider" true
    (width Device.Pmos "INV_X1H" > width Device.Pmos "INV_X1");
  Fixtures.check_close ~tol:1e-12 "nmos unchanged"
    (width Device.Nmos "INV_X1") (width Device.Nmos "INV_X1H")

let test_eval_arity () =
  Alcotest.check_raises "wrong arity" (Invalid_argument "NAND2_X1: wrong input count")
    (fun () -> ignore (Cell.eval (Catalog.find_exn "NAND2_X1") [ true ]))

let suite =
  [
    ("catalog: size", `Quick, test_catalog_size);
    ("catalog: lookup", `Quick, test_find);
    ("catalog: drive variants sorted", `Quick, test_variants_sorted);
    ("cells: truth tables (sample)", `Quick, test_truth_tables_sample);
    ("cells: truth tables (all)", `Slow, test_truth_tables_all);
    ("cells: arc counts", `Quick, test_arc_counts);
    ("cells: unateness", `Quick, test_unateness);
    ("cells: sensitizing side values", `Quick, test_sensitizing_side_values);
    ("cells: input capacitance", `Quick, test_input_capacitance);
    ("cells: area model", `Quick, test_area_model);
    ("cells: high-beta widths", `Quick, test_high_beta_widths);
    ("cells: eval arity check", `Quick, test_eval_arity);
  ]

let props = []
