module Image = Aging_image.Image
module Dct = Aging_image.Dct
module Pgm = Aging_image.Pgm
module Synthetic = Aging_image.Synthetic

let test_image_basics () =
  let img = Image.create ~width:4 ~height:3 in
  Image.set img ~x:1 ~y:2 300;
  Alcotest.(check int) "clamped high" 255 (Image.get img ~x:1 ~y:2);
  Image.set img ~x:0 ~y:0 (-5);
  Alcotest.(check int) "clamped low" 0 (Image.get img ~x:0 ~y:0);
  Alcotest.check_raises "bounds" (Invalid_argument "Image.get: out of bounds")
    (fun () -> ignore (Image.get img ~x:4 ~y:0))

let test_psnr () =
  let a = Image.init ~width:8 ~height:8 (fun ~x ~y -> (x + y) * 8) in
  Alcotest.(check bool) "identical is infinite" true
    (Image.psnr ~reference:a a = infinity);
  let b = Image.map (fun p -> p + 1) a in
  let p = Image.psnr ~reference:a b in
  Alcotest.(check bool) "one-off pixels ~48 dB" true (p > 44. && p < 52.)

let test_mse_dimension_check () =
  let a = Image.create ~width:4 ~height:4 in
  let b = Image.create ~width:5 ~height:4 in
  Alcotest.check_raises "dims" (Invalid_argument "Image.mse: dimension mismatch")
    (fun () -> ignore (Image.mse a b))

let test_block_roundtrip () =
  let img = Image.init ~width:16 ~height:16 (fun ~x ~y -> (x * 16) + y) in
  let block = Image.block8 img ~bx:1 ~by:0 in
  Alcotest.(check int) "block anchor" (Image.get img ~x:8 ~y:0) block.(0);
  let out = Image.create ~width:16 ~height:16 in
  Image.set_block8 out ~bx:1 ~by:0 block;
  Alcotest.(check int) "written back" (Image.get img ~x:9 ~y:3) (Image.get out ~x:9 ~y:3)

let test_block_edge_replication () =
  let img = Image.init ~width:12 ~height:12 (fun ~x ~y -> x + y) in
  let block = Image.block8 img ~bx:1 ~by:1 in
  (* Column 4.. of the block falls outside; values replicate the edge. *)
  Alcotest.(check int) "replicated" (Image.get img ~x:11 ~y:11) block.(63)

let test_dct_matrix_orthogonality () =
  let m = Dct.coefficients in
  for i = 0 to 7 do
    for k = 0 to 7 do
      let dot = ref 0 in
      for j = 0 to 7 do
        dot := !dot + (m.(i).(j) * m.(k).(j))
      done;
      if i = k then
        Alcotest.(check bool) "diagonal near 128^2/8... scaled" true
          (abs (!dot - 16384) < 600)
      else
        Alcotest.(check bool) "off-diagonal near zero" true (abs !dot < 600)
    done
  done

let test_dct_dc_block () =
  let block = Array.make 8 100 in
  let coeffs = Dct.forward_1d block in
  Alcotest.(check bool) "DC dominates" true (abs coeffs.(0) > 250);
  for i = 1 to 7 do
    Alcotest.(check bool) "AC near zero" true (abs coeffs.(i) <= 2)
  done

let test_dct_roundtrip_1d () =
  let x = [| 12; -50; 100; 127; -128; 3; 77; -1 |] in
  let y = Dct.inverse_1d (Dct.forward_1d x) in
  Array.iteri
    (fun i v ->
      Alcotest.(check bool)
        (Printf.sprintf "sample %d within rounding" i)
        true
        (abs (v - x.(i)) <= 3))
    y

let prop_dct_roundtrip_8x8 =
  Fixtures.qtest ~count:50 "2-D DCT/IDCT roundtrip within rounding"
    QCheck2.Gen.(array_size (QCheck2.Gen.return 64) (int_range (-128) 127))
    (fun block ->
      let decoded = Dct.inverse_8x8 (Dct.forward_8x8 block) in
      Array.for_all2 (fun a b -> abs (a - b) <= 4) block decoded)

let prop_dct_linearity_negation =
  Fixtures.qtest ~count:50 "DCT of negated block is negated (up to rounding)"
    QCheck2.Gen.(array_size (QCheck2.Gen.return 8) (int_range (-100) 100))
    (fun x ->
      let a = Dct.forward_1d x in
      let b = Dct.forward_1d (Array.map (fun v -> -v) x) in
      Array.for_all2 (fun p q -> abs (p + q) <= 2) a b)

let test_roundtrip_image_quality () =
  List.iter
    (fun (name, img) ->
      let psnr = Image.psnr ~reference:img (Dct.roundtrip_image img) in
      Alcotest.(check bool) (name ^ " roundtrip above 35 dB") true (psnr > 35.))
    (Synthetic.all ~width:24 ~height:24)

let test_synthetic_deterministic () =
  let a = Synthetic.blobs ~width:16 ~height:16 () in
  let b = Synthetic.blobs ~width:16 ~height:16 () in
  Alcotest.(check bool) "same seed, same image" true (Image.equal a b)

let test_pgm_roundtrip_binary () =
  let img = Synthetic.checkerboard ~width:9 ~height:5 () in
  Alcotest.(check bool) "binary" true (Image.equal img (Pgm.of_string (Pgm.to_string img)));
  Alcotest.(check bool) "ascii" true
    (Image.equal img (Pgm.of_string (Pgm.to_string ~binary:false img)))

let prop_pgm_roundtrip =
  Fixtures.qtest ~count:25 "pgm roundtrip on random images"
    QCheck2.Gen.(pair (int_range 1 12) (int_range 1 12))
    (fun (w, h) ->
      let rng = Aging_util.Rng.create (Int64.of_int ((w * 100) + h)) in
      let img = Image.init ~width:w ~height:h (fun ~x:_ ~y:_ -> Aging_util.Rng.int rng 256) in
      Image.equal img (Pgm.of_string (Pgm.to_string img))
      && Image.equal img (Pgm.of_string (Pgm.to_string ~binary:false img)))

let test_pgm_errors () =
  (try
     ignore (Pgm.of_string "P9\n1 1\n255\nx");
     Alcotest.fail "bad magic accepted"
   with Failure _ -> ());
  try
    ignore (Pgm.of_string "P5\n2 2\n255\nab");
    Alcotest.fail "truncated accepted"
  with Failure _ -> ()

let test_pgm_comments () =
  let img = Pgm.of_string "P2\n# a comment\n2 2\n255\n0 64\n128 255\n" in
  Alcotest.(check int) "pixel" 128 (Image.get img ~x:0 ~y:1)

let suite =
  [
    ("image: clamping and bounds", `Quick, test_image_basics);
    ("image: psnr", `Quick, test_psnr);
    ("image: mse dimension check", `Quick, test_mse_dimension_check);
    ("image: 8x8 blocks", `Quick, test_block_roundtrip);
    ("image: edge replication", `Quick, test_block_edge_replication);
    ("dct: matrix orthogonality", `Quick, test_dct_matrix_orthogonality);
    ("dct: DC block", `Quick, test_dct_dc_block);
    ("dct: 1-D roundtrip", `Quick, test_dct_roundtrip_1d);
    ("dct: image roundtrip quality", `Quick, test_roundtrip_image_quality);
    ("synthetic: deterministic", `Quick, test_synthetic_deterministic);
    ("pgm: roundtrips", `Quick, test_pgm_roundtrip_binary);
    ("pgm: malformed inputs", `Quick, test_pgm_errors);
    ("pgm: comments", `Quick, test_pgm_comments);
  ]

let props = [ prop_dct_roundtrip_8x8; prop_dct_linearity_negation; prop_pgm_roundtrip ]
