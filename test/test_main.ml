(* Aggregated alcotest runner; property-based tests (qcheck) are appended
   as their own suite per module. *)

let () =
  Alcotest.run "aging_eda"
    [
      ("util", Test_util.suite);
      ("util:properties", Test_util.props);
      ("physics", Test_physics.suite);
      ("physics:properties", Test_physics.props);
      ("spice", Test_spice.suite);
      ("spice:properties", Test_spice.props);
      ("cells", Test_cells.suite);
      ("liberty", Test_liberty.suite);
      ("liberty:properties", Test_liberty.props);
      ("fit", Test_fit.suite);
      ("fit:properties", Test_fit.props);
      ("netlist", Test_netlist.suite);
      ("netlist:properties", Test_netlist.props);
      ("sta", Test_sta.suite);
      ("sta:properties", Test_sta.props);
      ("synth", Test_synth.suite);
      ("synth:properties", Test_synth.props);
      ("sim", Test_sim.suite);
      ("sim:properties", Test_sim.props);
      ("image", Test_image.suite);
      ("image:properties", Test_image.props);
      ("designs", Test_designs.suite);
      ("designs:properties", Test_designs.props);
      ("bv", Test_bv.suite);
      ("bv:properties", Test_bv.props);
      ("export", Test_export.suite);
      ("core", Test_core.suite);
      ("obs", Test_obs.suite);
      ("check", Test_check.suite);
      ("serve", Test_serve.suite);
    ]
