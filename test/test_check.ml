(* Tests for the property-testing kernel itself (lib/check) plus the
   satellite coverage that rides on it: Rng sub-streams, fixture identity
   across job counts, SDF round-trips on a generated netlist, and
   PGM-file / DCT-bound checks driven by the new generators. *)

module Rng = Aging_util.Rng
module Gen = Aging_check.Gen
module Runner = Aging_check.Runner
module Netgen = Aging_check.Netgen
module Oracles = Aging_check.Oracles
module Sdf = Aging_sta.Sdf
module Timing = Aging_sta.Timing
module Image = Aging_image.Image
module Pgm = Aging_image.Pgm
module Dct = Aging_image.Dct

(* ------------------------- Rng sub-streams ------------------------- *)

let test_rng_split_deterministic () =
  let a = Rng.create 99L and b = Rng.create 99L in
  let ca = Rng.split a and cb = Rng.split b in
  for _ = 1 to 16 do
    Alcotest.(check int64) "child streams agree" (Rng.int64 ca) (Rng.int64 cb);
    Alcotest.(check int64) "parents agree after split" (Rng.int64 a)
      (Rng.int64 b)
  done

let test_rng_split_diverges_from_parent () =
  let a = Rng.create 7L in
  let reference = Rng.copy a in
  let child = Rng.split a in
  let overlap = ref 0 in
  for _ = 1 to 32 do
    if Rng.int64 child = Rng.int64 reference then incr overlap
  done;
  Alcotest.(check int) "child repeats none of the parent's outputs" 0 !overlap

let test_rng_substream_order_insensitive () =
  (* Sibling sub-streams are functions of (parent state, k) only: asking
     for them in a different order, or drawing from the parent afterwards,
     must not change what they produce. *)
  let t1 = Rng.create 5L and t2 = Rng.create 5L in
  let a3 = Rng.substream t1 3 and a1 = Rng.substream t1 1 in
  let b1 = Rng.substream t2 1 and b3 = Rng.substream t2 3 in
  ignore (Rng.int64 t2);
  for _ = 1 to 8 do
    Alcotest.(check int64) "substream 1 stable" (Rng.int64 a1) (Rng.int64 b1);
    Alcotest.(check int64) "substream 3 stable" (Rng.int64 a3) (Rng.int64 b3)
  done;
  Alcotest.(check bool) "distinct k decorrelated" false
    (Rng.int64 (Rng.substream t1 0) = Rng.int64 (Rng.substream t1 2))

let test_rng_substream_leaves_parent () =
  let t = Rng.create 13L in
  let witness = Rng.copy t in
  ignore (Rng.substream t 4);
  Alcotest.(check int64) "parent unmoved by substream" (Rng.int64 witness)
    (Rng.int64 t)

let test_rng_derive () =
  Alcotest.(check int64) "derive s 0 = s" 1234L (Rng.derive 1234L 0);
  let seen = Hashtbl.create 64 in
  for k = 0 to 63 do
    Hashtbl.replace seen (Rng.derive 1234L k) ()
  done;
  Alcotest.(check int) "64 distinct case seeds" 64 (Hashtbl.length seen)

(* ----------------------- generator kernel ----------------------- *)

let test_gen_deterministic () =
  let a = Gen.generate ~seed:42L Netgen.spec in
  let b = Gen.generate ~seed:42L Netgen.spec in
  Alcotest.(check bool) "same seed, same spec" true (a = b);
  let c = Gen.generate ~seed:43L Netgen.spec in
  Alcotest.(check bool) "different seed, different spec" false (a = c)

let test_gen_ranges () =
  for seed = 0 to 49 do
    let x = Gen.generate ~seed:(Int64.of_int seed) (Gen.int_range 3 9) in
    Alcotest.(check bool) "int_range in bounds" true (x >= 3 && x <= 9);
    let f = Gen.generate ~seed:(Int64.of_int seed) (Gen.float_range 1.5 2.5) in
    Alcotest.(check bool) "float_range in bounds" true (f >= 1.5 && f < 2.5);
    let l =
      Gen.generate ~seed:(Int64.of_int seed)
        (Gen.list_range 2 5 (Gen.int_range 0 10))
    in
    let n = List.length l in
    Alcotest.(check bool) "list_range length" true (n >= 2 && n <= 5)
  done

let test_runner_replays_cases () =
  (* The same seed must feed the property the same inputs, in order. *)
  let record () =
    let xs = ref [] in
    let prop s =
      xs := s :: !xs;
      Ok ()
    in
    let outcome =
      Runner.run ~cases:40 ~seed:11L ~name:"record" ~print:Netgen.pp_spec
        ~gen:Netgen.spec prop
    in
    Alcotest.(check bool) "all pass" true (Runner.passed outcome);
    List.rev !xs
  in
  Alcotest.(check bool) "two runs, same inputs" true (record () = record ())

let test_shrink_int_minimal () =
  let outcome =
    Runner.run ~cases:200 ~seed:3L ~name:"int<37" ~print:string_of_int
      ~gen:(Gen.int_range 0 1000)
      (fun x -> if x < 37 then Ok () else Error "too big")
  in
  match outcome.Runner.failures with
  | [ f ] ->
    Alcotest.(check string) "shrinks to the boundary" "37"
      f.Runner.counterexample
  | _ -> Alcotest.fail "expected exactly one failure"

let test_shrink_list_minimal () =
  let print l = String.concat "," (List.map string_of_int l) in
  let outcome =
    Runner.run ~cases:200 ~seed:9L ~name:"len<=4" ~print
      ~gen:(Gen.list_range 0 10 (Gen.int_range 0 100))
      (fun l -> if List.length l <= 4 then Ok () else Error "too long")
  in
  match outcome.Runner.failures with
  | [ f ] ->
    Alcotest.(check string) "minimal 5-element all-zero list" "0,0,0,0,0"
      f.Runner.counterexample
  | _ -> Alcotest.fail "expected exactly one failure"

let test_failure_seed_replays () =
  let gen = Gen.int_range 0 1000 in
  let prop x = if x < 37 then Ok () else Error "too big" in
  let outcome =
    Runner.run ~cases:200 ~seed:3L ~name:"replay" ~print:string_of_int ~gen
      prop
  in
  match outcome.Runner.failures with
  | [ f ] ->
    let again =
      Runner.run ~cases:1 ~seed:f.Runner.case_seed ~name:"replay-1"
        ~print:string_of_int ~gen prop
    in
    (match again.Runner.failures with
     | [ g ] ->
       Alcotest.(check string) "replayed case shrinks to the same minimum"
         f.Runner.counterexample g.Runner.counterexample
     | _ -> Alcotest.fail "replay did not fail")
  | _ -> Alcotest.fail "expected exactly one failure"

let test_netgen_well_formed () =
  for seed = 0 to 19 do
    let s = Gen.generate ~seed:(Int64.of_int seed) Netgen.spec in
    let n = Netgen.build s in
    let order = Aging_netlist.Netlist.combinational_order n in
    Alcotest.(check bool) "acyclic (topological order exists)" true
      (List.length order > 0)
  done

(* --------------------------- the oracles --------------------------- *)

let test_oracle_catalog () =
  let all = Oracles.all () in
  Alcotest.(check int) "ten oracles" 10 (List.length all);
  List.iter
    (fun (o : Oracles.t) ->
      match Oracles.find o.Oracles.name with
      | Some o' -> Alcotest.(check string) "find" o.Oracles.name o'.Oracles.name
      | None -> Alcotest.failf "find %s" o.Oracles.name)
    all;
  Alcotest.(check bool) "unknown name" true (Oracles.find "bogus" = None)

let oracle_case (o : Oracles.t) () =
  let outcome = o.Oracles.run ~seed:2026L ~cases:10 ~jobs:2 in
  if not (Runner.passed outcome) then
    Alcotest.failf "oracle failed:\n%s" (Runner.pp_outcome outcome)

let oracle_tests =
  List.map
    (fun (o : Oracles.t) ->
      Alcotest.test_case ("oracle " ^ o.Oracles.name) `Slow (oracle_case o))
    (Oracles.all ())

(* ---------------- fixture identity across job counts ---------------- *)

let test_fixture_jobs_identity () =
  match Fixtures.jobs_identity_error () with
  | None -> ()
  | Some msg -> Alcotest.fail msg

(* ------------------- SDF on a generated netlist ------------------- *)

let test_sdf_roundtrip_generated () =
  let spec = Gen.generate ~seed:2024L Netgen.spec in
  let n = Netgen.build spec in
  let analysis = Timing.analyze ~library:(Lazy.force Fixtures.fresh_library) n in
  let sdf = Sdf.of_analysis analysis in
  Alcotest.(check bool) "instances annotated" true (sdf.Sdf.cells <> []);
  let s = Sdf.to_string sdf in
  match Sdf.of_string s with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok sdf2 ->
    Alcotest.(check string) "write -> parse -> write fixpoint" s
      (Sdf.to_string sdf2);
    Alcotest.(check string) "design preserved" sdf.Sdf.design sdf2.Sdf.design;
    List.iter
      (fun (c : Sdf.cell) ->
        List.iter
          (fun (io : Sdf.iopath) ->
            List.iter
              (fun (t : Sdf.triple) ->
                if
                  not
                    (t.Sdf.d_min >= 0.
                     && t.Sdf.d_min <= t.Sdf.d_typ
                     && t.Sdf.d_typ <= t.Sdf.d_max
                     && Float.is_finite t.Sdf.d_max)
                then
                  Alcotest.failf "bad triple on %s %s->%s: %g/%g/%g"
                    c.Sdf.instance io.Sdf.from_pin io.Sdf.to_pin t.Sdf.d_min
                    t.Sdf.d_typ t.Sdf.d_max)
              [ io.Sdf.rise; io.Sdf.fall ])
          c.Sdf.iopaths)
      sdf2.Sdf.cells

(* ------------------ PGM files and DCT error bound ------------------ *)

let image_gen =
  let open Gen in
  let* w = int_range 1 16 in
  let* h = int_range 1 16 in
  let+ pixels = list_range (w * h) (w * h) (int_range 0 255) in
  { Image.width = w; height = h; pixels = Array.of_list pixels }

let test_pgm_file_roundtrip () =
  List.iteri
    (fun i binary ->
      let img = Gen.generate ~seed:(Int64.of_int (100 + i)) image_gen in
      let path = Filename.temp_file "aging_pgm" ".pgm" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          Pgm.write ~binary path img;
          let back = Pgm.read path in
          Alcotest.(check bool)
            (if binary then "binary file survives" else "ascii file survives")
            true (Image.equal img back)))
    [ true; false ]

let test_dct_bound_random_blocks () =
  let print l = String.concat "," (List.map string_of_int l) in
  let outcome =
    Runner.run ~cases:200 ~seed:8L ~name:"dct-idct" ~print
      ~gen:(Gen.list_range 64 64 (Gen.int_range (-128) 127))
      (fun l ->
        let block = Array.of_list l in
        let decoded = Dct.inverse_8x8 (Dct.forward_8x8 block) in
        let worst = ref 0 in
        Array.iteri
          (fun i v -> worst := max !worst (abs (v - decoded.(i))))
          block;
        if !worst <= 4 then Ok ()
        else Error (Printf.sprintf "reconstruction error %d > 4" !worst))
  in
  if not (Runner.passed outcome) then
    Alcotest.failf "%s" (Runner.pp_outcome outcome)

let suite =
  [
    Alcotest.test_case "rng split determinism" `Quick
      test_rng_split_deterministic;
    Alcotest.test_case "rng split diverges from parent" `Quick
      test_rng_split_diverges_from_parent;
    Alcotest.test_case "rng substream order-insensitive" `Quick
      test_rng_substream_order_insensitive;
    Alcotest.test_case "rng substream leaves parent" `Quick
      test_rng_substream_leaves_parent;
    Alcotest.test_case "rng derive" `Quick test_rng_derive;
    Alcotest.test_case "gen deterministic" `Quick test_gen_deterministic;
    Alcotest.test_case "gen ranges" `Quick test_gen_ranges;
    Alcotest.test_case "runner replays cases" `Quick test_runner_replays_cases;
    Alcotest.test_case "shrink int to boundary" `Quick test_shrink_int_minimal;
    Alcotest.test_case "shrink list to minimum" `Quick
      test_shrink_list_minimal;
    Alcotest.test_case "failure seed replays" `Quick test_failure_seed_replays;
    Alcotest.test_case "netgen well-formed" `Quick test_netgen_well_formed;
    Alcotest.test_case "oracle catalog" `Quick test_oracle_catalog;
    Alcotest.test_case "fixture identity across jobs" `Slow
      test_fixture_jobs_identity;
    Alcotest.test_case "sdf roundtrip on generated netlist" `Slow
      test_sdf_roundtrip_generated;
    Alcotest.test_case "pgm file roundtrip" `Quick test_pgm_file_roundtrip;
    Alcotest.test_case "dct reconstruction bound" `Quick
      test_dct_bound_random_blocks;
  ]
  @ oracle_tests
