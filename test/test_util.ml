module Interp = Aging_util.Interp
module Stats = Aging_util.Stats
module Rng = Aging_util.Rng
module Retry = Aging_util.Retry
module Tablefmt = Aging_util.Tablefmt
module Units = Aging_util.Units
module Pool = Aging_util.Pool

let check = Alcotest.(check (float 1e-9))
let xs = [| 0.; 1.; 2.; 4. |]
let ys = [| 0.; 10.; 20.; 40. |]

let test_linear_grid_points () =
  Array.iteri (fun i x -> check "grid point" ys.(i) (Interp.linear xs ys x)) xs

let test_linear_midpoint () =
  check "midpoint" 5. (Interp.linear xs ys 0.5);
  check "midpoint" 30. (Interp.linear xs ys 3.)

let test_linear_extrapolation () =
  check "below" (-10.) (Interp.linear xs ys (-1.));
  check "above" 50. (Interp.linear xs ys 5.)

let test_bracket () =
  Alcotest.(check int) "below grid" 0 (Interp.bracket xs (-5.));
  Alcotest.(check int) "above grid" 2 (Interp.bracket xs 100.);
  Alcotest.(check int) "interior" 1 (Interp.bracket xs 1.5);
  Alcotest.check_raises "too short" (Invalid_argument "Interp.bracket: axis needs >= 2 points")
    (fun () -> ignore (Interp.bracket [| 1. |] 0.))

let test_bilinear () =
  let rows = [| 0.; 1. |] and cols = [| 0.; 2. |] in
  let z = [| [| 0.; 2. |]; [| 4.; 6. |] |] in
  check "corner" 0. (Interp.bilinear ~rows ~cols z 0. 0.);
  check "corner" 6. (Interp.bilinear ~rows ~cols z 1. 2.);
  check "center" 3. (Interp.bilinear ~rows ~cols z 0.5 1.);
  check "edge midpoint" 1. (Interp.bilinear ~rows ~cols z 0. 1.)

let test_monotone () =
  Alcotest.(check bool) "increasing" true (Interp.monotone_increasing xs);
  Alcotest.(check bool) "flat" false (Interp.monotone_increasing [| 1.; 1. |]);
  Alcotest.(check bool) "decreasing" false (Interp.monotone_increasing [| 2.; 1. |])

let prop_linear_bounded =
  Fixtures.qtest "linear stays within segment bounds"
    QCheck2.Gen.(float_range 0. 4.)
    (fun x ->
      let v = Interp.linear xs ys x in
      v >= 0. -. 1e-9 && v <= 40. +. 1e-9)

let prop_bilinear_bounded =
  let rows = [| 0.; 1.; 2. |] and cols = [| 0.; 1. |] in
  let z = [| [| 1.; 5. |]; [| 2.; 3. |]; [| 0.; 7. |] |] in
  Fixtures.qtest "bilinear within value bounds inside grid"
    QCheck2.Gen.(pair (float_range 0. 2.) (float_range 0. 1.))
    (fun (r, c) ->
      let v = Interp.bilinear ~rows ~cols z r c in
      v >= 0. -. 1e-9 && v <= 7. +. 1e-9)

let test_stats_basic () =
  check "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  check "stddev" 0. (Stats.stddev [ 5.; 5. ]);
  check "stddev of alternating +-1" 1. (Stats.stddev [ 1.; 3.; 1.; 3. ]);
  let lo, hi = Stats.min_max [ 3.; -1.; 7. ] in
  check "min" (-1.) lo;
  check "max" 7. hi;
  check "geomean" 2. (Stats.geometric_mean [ 1.; 2.; 4. ])

let test_percentile () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  check "p0" 1. (Stats.percentile 0. xs);
  check "p50" 3. (Stats.percentile 50. xs);
  check "p100" 5. (Stats.percentile 100. xs);
  check "p25" 2. (Stats.percentile 25. xs)

let test_histogram () =
  let h = Stats.histogram ~lo:0. ~hi:10. ~bins:5 [ 0.5; 1.; 9.9; -3.; 42. ] in
  Alcotest.(check int) "total count" 5 (Array.fold_left ( + ) 0 h.Stats.counts);
  Alcotest.(check int) "first bin has clamped low outlier" 3 h.Stats.counts.(0);
  Alcotest.(check int) "last bin has clamped high outlier" 2 h.Stats.counts.(4)

let test_histogram_nan () =
  let h = Stats.histogram ~lo:0. ~hi:10. ~bins:5 [ 1.; Float.nan; 9. ] in
  Alcotest.(check int) "NaN lands in no bin" 2
    (Array.fold_left ( + ) 0 h.Stats.counts);
  Alcotest.(check int) "NaN does not pollute bin 0" 1 h.Stats.counts.(0);
  Alcotest.(check int) "NaN counted separately" 1 h.Stats.nan_count;
  let clean = Stats.histogram ~lo:0. ~hi:10. ~bins:5 [ 1.; 9. ] in
  Alcotest.(check int) "clean sample has no NaNs" 0 clean.Stats.nan_count

let test_fraction_below () =
  check "empty" 0. (Stats.fraction_below 0. []);
  check "half" 0.5 (Stats.fraction_below 0. [ -1.; 1. ])

let test_stats_errors () =
  Alcotest.check_raises "mean empty" (Invalid_argument "Stats.mean: empty sample")
    (fun () -> ignore (Stats.mean []));
  Alcotest.check_raises "percentile range"
    (Invalid_argument "Stats.percentile: p outside [0,100]") (fun () ->
      ignore (Stats.percentile 101. [ 1. ]))

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 20 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_split () =
  let a = Rng.create 42L in
  let b = Rng.split a in
  Alcotest.(check bool) "split streams differ" true (Rng.int64 a <> Rng.int64 b)

let prop_rng_float_range =
  Fixtures.qtest "float in [0,1)"
    QCheck2.Gen.(int64)
    (fun seed ->
      let rng = Rng.create seed in
      let x = Rng.float rng in
      x >= 0. && x < 1.)

let prop_rng_int_range =
  Fixtures.qtest "int in bounds"
    QCheck2.Gen.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let test_retry_first_try () =
  match Retry.with_escalation ~ladder:[ 1; 2; 3 ] (fun lvl -> Ok (10 * lvl)) with
  | Retry.First_try v ->
    Alcotest.(check int) "base rung used" 10 v
  | _ -> Alcotest.fail "expected First_try"

let test_retry_recovers () =
  let attempts = ref [] in
  let outcome =
    Retry.with_escalation ~ladder:[ 0; 1; 2 ] (fun lvl ->
        attempts := lvl :: !attempts;
        if lvl < 2 then Error (Printf.sprintf "rung %d failed" lvl) else Ok lvl)
  in
  (match outcome with
  | Retry.Recovered (v, errors) ->
    Alcotest.(check int) "succeeded on last rung" 2 v;
    Alcotest.(check (list string)) "errors in attempt order"
      [ "rung 0 failed"; "rung 1 failed" ] errors
  | _ -> Alcotest.fail "expected Recovered");
  Alcotest.(check (list int)) "every rung tried once" [ 0; 1; 2 ] (List.rev !attempts);
  Alcotest.(check int) "attempts counted" 3 (Retry.attempts outcome)

let test_retry_exhausted () =
  let outcome =
    Retry.with_escalation ~ladder:[ "a"; "b" ] (fun lvl -> Error (lvl ^ "!"))
  in
  (match outcome with
  | Retry.Exhausted errors ->
    Alcotest.(check (list string)) "all errors kept" [ "a!"; "b!" ] errors
  | _ -> Alcotest.fail "expected Exhausted");
  Alcotest.(check bool) "no success value" true (Retry.succeeded outcome = None);
  Alcotest.check_raises "empty ladder"
    (Invalid_argument "Retry.with_escalation: empty ladder") (fun () ->
      ignore (Retry.with_escalation ~ladder:[] (fun _ -> Ok ())))

let test_retry_stops_at_success () =
  let calls = ref 0 in
  let outcome =
    Retry.with_escalation ~ladder:[ 0; 1; 2; 3 ] (fun lvl ->
        incr calls;
        if lvl = 1 then Ok "done" else Error lvl)
  in
  Alcotest.(check int) "no attempts after success" 2 !calls;
  Alcotest.(check bool) "value" true (Retry.succeeded outcome = Some "done");
  Alcotest.(check (list int)) "errors before success" [ 0 ] (Retry.errors outcome)

let test_tablefmt () =
  let s = Tablefmt.render ~header:[ "name"; "value" ] [ [ "x"; "12" ]; [ "longer"; "3" ] ] in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && String.sub s 0 4 = "name");
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines + trailing" 5 (List.length lines)

let test_pp () =
  Alcotest.(check string) "pp_ps" "12.5 ps" (Format.asprintf "%a" Units.pp_ps 12.5e-12);
  Alcotest.(check string) "pp_percent" "+19.0 %" (Format.asprintf "%a" Units.pp_percent 0.19)

let test_units () =
  check "ps roundtrip" 12.5 (Units.ps (Units.of_ps 12.5));
  check "ff roundtrip" 3.5 (Units.ff (Units.of_ff 3.5));
  check "nm" 45e-9 (Units.of_nm 45.);
  check "um2" 1. (Units.um2 1e-12)

let range n = List.init n (fun i -> i)

let test_pool_matches_sequential () =
  let f x = (x * x) + 1 in
  let xs = range 37 in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d equals List.map" jobs)
        (List.map f xs)
        (Pool.map ~jobs f xs))
    [ 1; 2; 3; 4; 8; 64 ]

let test_pool_edge_inputs () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 8 ] (Pool.map ~jobs:4 succ [ 7 ]);
  Alcotest.(check (list int)) "fewer items than jobs" [ 1; 2 ]
    (Pool.map ~jobs:16 succ [ 0; 1 ])

let test_pool_exception_lowest_index () =
  (* Both index 3 and index 7 raise; the propagated exception must be the
     lowest-index one regardless of which domain finishes first. *)
  Alcotest.check_raises "lowest index wins" (Failure "item 3") (fun () ->
      ignore
        (Pool.map ~jobs:4
           (fun x ->
             if x = 3 || x = 7 then failwith (Printf.sprintf "item %d" x)
             else x)
           (range 12)))

let test_pool_nested () =
  (* A worker calling Pool.map again must not spawn a second tier of
     domains; the nested map runs sequentially and the composite result is
     still the sequential one. *)
  let expected =
    List.map (fun i -> List.map (fun j -> (10 * i) + j) (range 4)) (range 6)
  in
  let got =
    Pool.map ~jobs:3
      (fun i -> Pool.map ~jobs:3 (fun j -> (10 * i) + j) (range 4))
      (range 6)
  in
  Alcotest.(check (list (list int))) "nested map sequentialized" expected got

let test_pool_default_jobs () =
  Alcotest.(check bool) "default is at least 1" true (Pool.default_jobs () >= 1)

let test_pool_reusable_after_failure () =
  (* Regression: a worker raising mid-drain used to leave the pool's
     nesting latch set and domains unjoined, so the next map on the same
     domain ran sequentially (or tripped over dangling state).  After a
     failed map the pool must be fully reusable — and actually parallel. *)
  Alcotest.check_raises "failure still propagates" (Failure "boom") (fun () ->
      ignore
        (Pool.map ~jobs:4 (fun x -> if x = 3 then failwith "boom" else x)
           (range 8)));
  Alcotest.(check (list int)) "next map is correct"
    (List.map succ (range 16))
    (Pool.map ~jobs:4 succ (range 16));
  let ids =
    Pool.map ~jobs:4 (fun _ -> (Domain.self () :> int)) (range 16)
  in
  let distinct = List.sort_uniq compare ids in
  Alcotest.(check bool) "next map runs on several domains again" true
    (List.length distinct > 1)

(* ------------------------------ backoff ------------------------------ *)

let test_backoff_delay () =
  let b =
    { Retry.default_backoff with base = 0.1; factor = 2.; cap = 0.5;
      jitter = 0. }
  in
  check "1st failure" 0.1 (Retry.backoff_delay b ~failures:1);
  check "2nd doubles" 0.2 (Retry.backoff_delay b ~failures:2);
  check "3rd doubles again" 0.4 (Retry.backoff_delay b ~failures:3);
  check "4th capped" 0.5 (Retry.backoff_delay b ~failures:4);
  check "stays capped" 0.5 (Retry.backoff_delay b ~failures:20)

let test_backoff_jitter_deterministic () =
  let b =
    { Retry.default_backoff with base = 0.1; factor = 2.; cap = 10.;
      jitter = 0.5 }
  in
  let d1 = Retry.backoff_delay ~rng:(Rng.create 7L) b ~failures:3 in
  let d2 = Retry.backoff_delay ~rng:(Rng.create 7L) b ~failures:3 in
  check "same seed, same dithered delay" d1 d2;
  Alcotest.(check bool) "within the jitter band" true
    (d1 <= 0.4 && d1 >= 0.4 *. 0.5);
  let d3 = Retry.backoff_delay ~rng:(Rng.create 8L) b ~failures:3 in
  Alcotest.(check bool) "different seed dithers differently" true (d1 <> d3)

(* A fake clock whose time only advances when the policy sleeps: the
   schedule assertions are exact and the test itself never sleeps. *)
let recording_clock () =
  let t = ref 0. and slept = ref [] in
  let sleep d =
    slept := d :: !slept;
    t := !t +. d
  in
  ((fun () -> !t), sleep, fun () -> List.rev !slept)

let test_with_backoff_schedule () =
  let policy =
    { Retry.base = 0.1; factor = 2.; cap = 10.; jitter = 0.;
      max_attempts = 4; budget = infinity }
  in
  let now, sleep, slept = recording_clock () in
  let attempts = ref [] in
  let outcome =
    Retry.with_backoff ~sleep ~now policy (fun ~attempt ->
        attempts := attempt :: !attempts;
        Error attempt)
  in
  (match outcome with
  | Retry.Exhausted errors ->
    Alcotest.(check (list int)) "every attempt's error, in order"
      [ 0; 1; 2; 3 ] errors
  | _ -> Alcotest.fail "expected Exhausted");
  Alcotest.(check (list int)) "attempt numbers" [ 0; 1; 2; 3 ]
    (List.rev !attempts);
  Alcotest.(check (list (float 1e-9))) "undithered exponential schedule"
    [ 0.1; 0.2; 0.4 ] (slept ())

let test_with_backoff_budget () =
  (* base 0.4, factor 2: the second delay (0.8) would land at 1.2 > 0.5,
     so the policy stops after two attempts and one sleep. *)
  let policy =
    { Retry.base = 0.4; factor = 2.; cap = 10.; jitter = 0.;
      max_attempts = 100; budget = 0.5 }
  in
  let now, sleep, slept = recording_clock () in
  let outcome =
    Retry.with_backoff ~sleep ~now policy (fun ~attempt -> Error attempt)
  in
  Alcotest.(check int) "budget cut the attempts" 2 (Retry.attempts outcome);
  Alcotest.(check (list (float 1e-9))) "only the affordable sleep taken"
    [ 0.4 ] (slept ())

let test_with_backoff_recovers_deterministically () =
  let policy =
    { Retry.base = 0.01; factor = 2.; cap = 1.; jitter = 0.5;
      max_attempts = 8; budget = infinity }
  in
  let run seed =
    let now, sleep, slept = recording_clock () in
    let outcome =
      Retry.with_backoff ~sleep ~now ~rng:(Rng.create seed) policy
        (fun ~attempt -> if attempt = 3 then Ok "done" else Error attempt)
    in
    (outcome, slept ())
  in
  let o1, s1 = run 5L in
  let _, s2 = run 5L in
  (match o1 with
  | Retry.Recovered ("done", errors) ->
    Alcotest.(check (list int)) "failed attempts recorded" [ 0; 1; 2 ] errors
  | _ -> Alcotest.fail "expected Recovered");
  Alcotest.(check (list (float 0.))) "bit-identical jittered schedule" s1 s2;
  Alcotest.(check int) "slept between every attempt" 3 (List.length s1)

(* -------------------------------- lru -------------------------------- *)

module Lru = Aging_util.Lru

let test_lru_eviction_order () =
  let c = Lru.create ~cap:2 in
  Alcotest.(check bool) "no eviction below cap" true (Lru.put c "a" 1 = None);
  Alcotest.(check bool) "no eviction at cap" true (Lru.put c "b" 2 = None);
  (* touch "a" so "b" becomes the eviction victim *)
  Alcotest.(check bool) "find hits and promotes" true (Lru.find c "a" = Some 1);
  Alcotest.(check bool) "lru binding handed back" true
    (Lru.put c "c" 3 = Some ("b", 2));
  Alcotest.(check bool) "victim gone" false (Lru.mem c "b");
  Alcotest.(check bool) "promoted survivor present" true (Lru.mem c "a");
  Alcotest.(check int) "length at cap" 2 (Lru.length c);
  Alcotest.(check bool) "mru first" true
    (Lru.to_list c = [ ("c", 3); ("a", 1) ]);
  Alcotest.check_raises "cap validated"
    (Invalid_argument "Lru.create: cap must be >= 1") (fun () ->
      ignore (Lru.create ~cap:0))

let test_lru_replace_promotes () =
  let c = Lru.create ~cap:2 in
  ignore (Lru.put c "a" 1);
  ignore (Lru.put c "b" 2);
  (* replacing "a" promotes it and never evicts *)
  Alcotest.(check bool) "replace evicts nothing" true (Lru.put c "a" 9 = None);
  Alcotest.(check bool) "replaced value" true (Lru.find c "a" = Some 9);
  Alcotest.(check bool) "replacement made b the victim" true
    (Lru.put c "c" 3 = Some ("b", 2))

let test_lru_remove_clear () =
  let c = Lru.create ~cap:4 in
  ignore (Lru.put c 1 "one");
  ignore (Lru.put c 2 "two");
  Lru.remove c 1;
  Alcotest.(check bool) "removed" false (Lru.mem c 1);
  Alcotest.(check int) "length after remove" 1 (Lru.length c);
  Lru.clear c;
  Alcotest.(check int) "cleared" 0 (Lru.length c);
  Alcotest.(check bool) "cap unchanged" true (Lru.cap c = 4)

let suite =
  [
    ("interp: grid points", `Quick, test_linear_grid_points);
    ("interp: midpoint", `Quick, test_linear_midpoint);
    ("interp: extrapolation", `Quick, test_linear_extrapolation);
    ("interp: bracket", `Quick, test_bracket);
    ("interp: bilinear", `Quick, test_bilinear);
    ("interp: monotone check", `Quick, test_monotone);
    ("stats: basics", `Quick, test_stats_basic);
    ("stats: percentile", `Quick, test_percentile);
    ("stats: histogram clamps", `Quick, test_histogram);
    ("stats: histogram skips NaN", `Quick, test_histogram_nan);
    ("stats: fraction below", `Quick, test_fraction_below);
    ("stats: errors", `Quick, test_stats_errors);
    ("rng: deterministic", `Quick, test_rng_deterministic);
    ("rng: split", `Quick, test_rng_split);
    ("retry: first try", `Quick, test_retry_first_try);
    ("retry: recovers after escalation", `Quick, test_retry_recovers);
    ("retry: exhausted ladder", `Quick, test_retry_exhausted);
    ("retry: stops at first success", `Quick, test_retry_stops_at_success);
    ("tablefmt: layout", `Quick, test_tablefmt);
    ("units: conversions", `Quick, test_units);
    ("units: pretty printers", `Quick, test_pp);
    ("pool: matches sequential map", `Quick, test_pool_matches_sequential);
    ("pool: edge inputs", `Quick, test_pool_edge_inputs);
    ("pool: lowest-index exception", `Quick, test_pool_exception_lowest_index);
    ("pool: nested maps sequentialize", `Quick, test_pool_nested);
    ("pool: default jobs", `Quick, test_pool_default_jobs);
    ("pool: reusable after a worker raises", `Quick,
     test_pool_reusable_after_failure);
    ("backoff: capped exponential delays", `Quick, test_backoff_delay);
    ("backoff: deterministic jitter", `Quick, test_backoff_jitter_deterministic);
    ("backoff: exact schedule", `Quick, test_with_backoff_schedule);
    ("backoff: budget bounds total time", `Quick, test_with_backoff_budget);
    ("backoff: recovery with seeded schedule", `Quick,
     test_with_backoff_recovers_deterministically);
    ("lru: eviction order", `Quick, test_lru_eviction_order);
    ("lru: replace promotes", `Quick, test_lru_replace_promotes);
    ("lru: remove and clear", `Quick, test_lru_remove_clear);
  ]

let props = [ prop_linear_bounded; prop_bilinear_bounded; prop_rng_float_range; prop_rng_int_range ]
