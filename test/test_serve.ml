(* The service layer: framing, protocol, bounded queue, chaos policy, and
   the full daemon — deadlines, shedding, drain, supervisor restarts —
   exercised in-process over real unix sockets. *)

module Json = Aging_obs.Json
module Metrics = Aging_obs.Metrics
module Span = Aging_obs.Span
module Flightrec = Aging_obs.Flightrec
module Frame = Aging_serve.Frame
module Protocol = Aging_serve.Protocol
module Bqueue = Aging_serve.Bqueue
module Chaos = Aging_serve.Chaos
module Openmetrics = Aging_obs.Openmetrics
module Server = Aging_serve.Server
module Metrics_http = Aging_serve.Metrics_http
module Client = Aging_serve.Client
module Soak = Aging_serve.Soak
module Dash = Aging_serve.Dash
module Scenario = Aging_physics.Scenario
module Rng = Aging_util.Rng
module Retry = Aging_util.Retry

let json_t =
  Alcotest.testable
    (fun fmt j -> Format.fprintf fmt "%s" (Json.to_string j))
    ( = )

let code_t =
  Alcotest.testable
    (fun fmt c ->
      Format.fprintf fmt "%s" (Protocol.error_code_to_string c))
    ( = )

(* ------------------------------ frame ------------------------------ *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_frame_roundtrip () =
  with_socketpair (fun a b ->
      let msg =
        Json.Obj [ ("op", Json.String "ping"); ("id", Json.Int 7) ]
      in
      Frame.write a msg;
      (match Frame.read b with
      | Ok got -> Alcotest.check json_t "roundtrip" msg got
      | Error e -> Alcotest.fail (Frame.error_to_string e));
      (* several frames back to back stay aligned *)
      Frame.write a (Json.Int 1);
      Frame.write a (Json.Int 2);
      Alcotest.(check bool) "first" true (Frame.read b = Ok (Json.Int 1));
      Alcotest.(check bool) "second" true (Frame.read b = Ok (Json.Int 2)))

let test_frame_oversized () =
  with_socketpair (fun a b ->
      Frame.write_raw a "\xff\xff\xff\xffBOOM";
      match Frame.read b with
      | Error (Frame.Oversized _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Oversized");
  with_socketpair (fun a b ->
      (* A length over the explicit cap is also rejected before allocating. *)
      Frame.write a (Json.String (String.make 64 'x'));
      match Frame.read ~max_frame:8 b with
      | Error (Frame.Oversized _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Oversized")

let test_frame_malformed_keeps_stream () =
  with_socketpair (fun a b ->
      Frame.write_raw a "\x00\x00\x00\x05hello";
      (match Frame.read b with
      | Error (Frame.Malformed _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Malformed");
      (* the stream is still frame-aligned after the bad payload *)
      Frame.write a (Json.String "ok");
      Alcotest.(check bool) "aligned" true
        (Frame.read b = Ok (Json.String "ok")))

let test_frame_closed () =
  with_socketpair (fun a b ->
      Unix.close a;
      (match Frame.read b with
      | Error Frame.Closed -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Closed"));
  with_socketpair (fun a b ->
      (* truncated frame: header promises more bytes than ever arrive *)
      Frame.write_raw a "\x00\x00\x00\x10{\"op\":";
      Unix.close a;
      match Frame.read b with
      | Error Frame.Closed -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Closed")

(* ----------------------------- protocol ----------------------------- *)

let test_protocol_roundtrip () =
  let corner = Scenario.corner ~lambda_p:0.37 ~lambda_n:0.61 in
  let meta =
    { Protocol.id = Some 5; deadline_s = Some 0.25;
      trace_id = Some "c1a2b-3" }
  in
  List.iter
    (fun req ->
      match Protocol.request_of_json (Protocol.request_to_json ~meta req) with
      | Ok (meta', req') ->
        Alcotest.(check bool)
          (Protocol.request_op req ^ " request") true (req' = req);
        Alcotest.(check bool)
          (Protocol.request_op req ^ " meta") true (meta' = meta)
      | Error msg -> Alcotest.fail msg)
    [
      Protocol.Ping; Protocol.Stats; Protocol.Health; Protocol.Shutdown;
      Protocol.Sleep 0.5; Protocol.Crash;
      Protocol.Guardband { design = "DSP"; corner };
      Protocol.Delay
        { cell = "INV_X1"; corner; slew = Some 1e-11; load = None };
    ];
  List.iter
    (fun resp ->
      match Protocol.response_of_json (Protocol.response_to_json ~id:3 resp) with
      | Ok (id, resp') ->
        Alcotest.(check bool) "response" true (resp' = resp);
        Alcotest.(check bool) "id" true (id = Some 3)
      | Error msg -> Alcotest.fail msg)
    [
      Protocol.Reply (Json.Obj [ ("x", Json.Int 1) ]);
      Protocol.Refused { code = Protocol.Overloaded; message = "full" };
      Protocol.Refused { code = Protocol.Timeout; message = "late" };
      Protocol.Refused { code = Protocol.Shutting_down; message = "bye" };
    ]

let test_protocol_rejects () =
  let bad json =
    match Protocol.request_of_json json with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "expected parse error"
  in
  bad (Json.Obj [ ("id", Json.Int 1) ]);
  bad (Json.Obj [ ("op", Json.String "fry") ]);
  bad (Json.Obj [ ("op", Json.String "sleep") ]);
  bad (Json.Obj [ ("op", Json.String "sleep"); ("seconds", Json.Float (-1.)) ]);
  bad (Json.Obj [ ("op", Json.String "guardband") ]);
  bad
    (Json.Obj
       [ ("op", Json.String "delay"); ("cell", Json.String "INV_X1");
         ("lambda_p", Json.Float 0.5) ])

(* ------------------------------ bqueue ------------------------------ *)

let test_bqueue_bounds () =
  let q = Bqueue.create ~cap:2 in
  Alcotest.(check bool) "push 1" true (Bqueue.try_push q 1 = `Ok);
  Alcotest.(check bool) "push 2" true (Bqueue.try_push q 2 = `Ok);
  Alcotest.(check bool) "full" true (Bqueue.try_push q 3 = `Full);
  Alcotest.(check bool) "fifo" true (Bqueue.pop q = Some 1);
  Alcotest.(check bool) "freed a slot" true (Bqueue.try_push q 4 = `Ok);
  Bqueue.close q;
  Alcotest.(check bool) "closed" true (Bqueue.try_push q 5 = `Closed);
  Alcotest.(check bool) "drains" true (Bqueue.pop q = Some 2);
  Alcotest.(check bool) "drains" true (Bqueue.pop q = Some 4);
  Alcotest.(check bool) "empty+closed" true (Bqueue.pop q = None);
  Alcotest.check_raises "cap >= 1"
    (Invalid_argument "Bqueue.create: cap must be >= 1") (fun () ->
      ignore (Bqueue.create ~cap:0))

let test_bqueue_blocking_pop () =
  let q = Bqueue.create ~cap:4 in
  let got = ref None in
  let consumer = Thread.create (fun () -> got := Bqueue.pop q) () in
  Unix.sleepf 0.02;
  Alcotest.(check bool) "consumer still blocked" true (!got = None);
  ignore (Bqueue.try_push q 42);
  Thread.join consumer;
  Alcotest.(check bool) "woken with the value" true (!got = Some 42)

(* ------------------------------ chaos ------------------------------ *)

let test_chaos_deterministic () =
  let policy =
    Chaos.validated
      { Chaos.kill_rate = 0.1; crash_rate = 0.2; slow_rate = 0.3;
        slow_s = 0.01; seed = 9 }
  in
  let decisions n = List.init n (fun i -> Chaos.decide policy ~request_id:i) in
  Alcotest.(check bool) "replayable" true (decisions 200 = decisions 200);
  let seen = decisions 200 in
  Alcotest.(check bool) "all actions occur at these rates" true
    (List.exists (fun a -> a = Chaos.Kill_worker) seen
    && List.exists (fun a -> a = Chaos.Crash_handler) seen
    && List.exists (fun a -> a = Chaos.Slow 0.01) seen
    && List.exists (fun a -> a = Chaos.Pass) seen);
  Alcotest.(check bool) "none passes everything" true
    (List.for_all (fun i -> Chaos.decide Chaos.none ~request_id:i = Chaos.Pass)
       (List.init 50 Fun.id));
  Alcotest.check_raises "rates validated"
    (Invalid_argument "Chaos: kill_rate must be in [0, 1]") (fun () ->
      ignore (Chaos.validated { Chaos.none with kill_rate = 1.5 }))

(* --------------------------- client backoff --------------------------- *)

(* Satellite requirement: the client's retry schedule is a pure function
   of the seed.  Run the same failing request twice with a recording
   sleep; the slept delays must match to the bit. *)
let test_client_backoff_deterministic () =
  let backoff =
    { Retry.base = 0.01; factor = 2.; cap = 0.05; jitter = 0.5;
      max_attempts = 5; budget = infinity }
  in
  let schedule seed =
    let slept = ref [] in
    let outcome =
      Client.request ~backoff ~rng:(Rng.create seed)
        ~sleep:(fun d -> slept := d :: !slept)
        (`Unix "no-such-socket.sock") Protocol.Ping
    in
    (List.rev !slept, outcome)
  in
  let s1, o1 = schedule 11L in
  let s2, _ = schedule 11L in
  let s3, _ = schedule 12L in
  Alcotest.(check (list (float 0.))) "same seed, same schedule" s1 s2;
  Alcotest.(check int) "slept between every attempt" 4 (List.length s1);
  Alcotest.(check bool) "different seed, different schedule" true (s1 <> s3);
  List.iteri
    (fun i d ->
      let undithered = Float.min 0.05 (0.01 *. (2. ** float_of_int i)) in
      Alcotest.(check bool) "within jitter band" true
        (d <= undithered && d >= undithered *. 0.5))
    s1;
  (match o1 with
  | Retry.Exhausted errors ->
    Alcotest.(check int) "all attempts failed" 5 (List.length errors);
    Alcotest.(check bool) "transport errors" true
      (List.for_all (function Client.Transport _ -> true | _ -> false) errors)
  | _ -> Alcotest.fail "expected Exhausted");
  (* non-retryable refusals must not consume the retry budget *)
  Alcotest.(check bool) "bad_request not retryable" false
    (Client.retryable (Client.Refused (Protocol.Bad_request, "")));
  Alcotest.(check bool) "overloaded retryable" true
    (Client.retryable (Client.Refused (Protocol.Overloaded, "")))

(* ------------------------------ server ------------------------------ *)

let sock_name =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "tserve-%d-%d.sock" (Unix.getpid ()) !n

let default_handler req =
  match req with
  | Protocol.Sleep s ->
    Unix.sleepf s;
    Ok (Json.Obj [ ("slept_s", Json.of_float s) ])
  | Protocol.Crash -> raise Chaos.Chaos_kill
  | _ -> Ok (Json.Obj [ ("ok", Json.Bool true) ])

let with_server ?(workers = 1) ?(queue_cap = 4) ?default_deadline
    ?(chaos = Chaos.none) ?stall_after_s ?metrics_port
    ?(handler = default_handler) f =
  let path = sock_name () in
  let cfg =
    {
      Server.default_config with
      addr = `Unix path;
      workers;
      queue_cap;
      default_deadline_s = default_deadline;
      chaos;
    }
  in
  let cfg =
    match stall_after_s with
    | None -> cfg
    | Some s -> { cfg with Server.stall_after_s = Some s }
  in
  let cfg =
    match metrics_port with
    | None -> cfg
    | Some p -> { cfg with Server.metrics_port = Some p }
  in
  let srv = Server.start ~handler cfg in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Server.await srv;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f srv (`Unix path : Client.addr))

let call_on addr ?deadline_s req =
  match Client.connect addr with
  | Error e -> Error e
  | Ok conn ->
    Fun.protect
      ~finally:(fun () -> Client.close conn)
      (fun () -> Client.call ?deadline_s conn req)

let code_of = function
  | Error (Client.Refused (code, _)) -> Some code
  | Ok _ | Error _ -> None

let test_server_ping_stats () =
  with_server (fun _srv addr ->
      (match call_on addr Protocol.Ping with
      | Ok (Json.Obj fields) ->
        Alcotest.(check bool) "pong" true
          (List.assoc_opt "pong" fields = Some (Json.Bool true))
      | Ok _ -> Alcotest.fail "unexpected ping payload"
      | Error e -> Alcotest.fail (Client.error_to_string e));
      match call_on addr Protocol.Stats with
      | Ok stats ->
        Alcotest.(check bool) "running" true
          (Json.member "state" stats = Some (Json.String "running"));
        Alcotest.(check bool) "queue cap reported" true
          (Json.member "queue_cap" stats = Some (Json.Int 4));
        Alcotest.(check bool) "metrics attached" true
          (Json.member "metrics" stats <> None)
      | Error e -> Alcotest.fail (Client.error_to_string e))

let test_server_deadline_timeout () =
  with_server (fun _srv addr ->
      let t0 = Unix.gettimeofday () in
      let r = call_on addr ~deadline_s:0.08 (Protocol.Sleep 0.5) in
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check (option code_t)) "typed timeout" (Some Protocol.Timeout)
        (code_of r);
      Alcotest.(check bool) "answered near the deadline, not the sleep" true
        (elapsed < 0.4))

let test_server_queued_job_cancelled () =
  with_server (fun _srv addr ->
      (* One worker is pinned by a long job; the queued job's deadline
         expires while it waits and the reaper must answer it — the
         client cannot be serialized behind the sleeper. *)
      let blocker =
        Thread.create (fun () -> call_on addr (Protocol.Sleep 0.3)) ()
      in
      Unix.sleepf 0.05;
      let t0 = Unix.gettimeofday () in
      let r = call_on addr ~deadline_s:0.05 (Protocol.Sleep 0.3) in
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check (option code_t)) "typed timeout" (Some Protocol.Timeout)
        (code_of r);
      Alcotest.(check bool) "cancelled while queued" true (elapsed < 0.2);
      Thread.join blocker)

let test_server_overload_sheds () =
  with_server ~workers:1 ~queue_cap:1 (fun _srv addr ->
      let slow () = Thread.create (fun () -> call_on addr (Protocol.Sleep 0.3)) () in
      let t1 = slow () in
      Unix.sleepf 0.05;
      (* worker busy *)
      let t2 = slow () in
      Unix.sleepf 0.05;
      (* queue now holds one job; the next must shed, not hang *)
      let t0 = Unix.gettimeofday () in
      let r = call_on addr (Protocol.Sleep 0.1) in
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check (option code_t)) "typed overloaded"
        (Some Protocol.Overloaded) (code_of r);
      Alcotest.(check bool) "immediate refusal" true (elapsed < 0.1);
      Thread.join t1;
      Thread.join t2)

let test_server_drain_completes_inflight () =
  let inflight_result = ref (Error (Client.Transport "never ran")) in
  with_server (fun srv addr ->
      let worker_th =
        Thread.create
          (fun () -> inflight_result := call_on addr (Protocol.Sleep 0.25))
          ()
      in
      Unix.sleepf 0.08;
      (* request drain while the job runs; an existing connection must be
         refused with the typed drain code, not a hang or a reset *)
      Server.stop srv;
      Unix.sleepf 0.05;
      let refused = call_on addr (Protocol.Sleep 0.01) in
      Alcotest.(check bool) "new work refused during drain" true
        (code_of refused = Some Protocol.Shutting_down
        || (match refused with Error (Client.Transport _) -> true | _ -> false));
      Server.await srv;
      Thread.join worker_th;
      (match !inflight_result with
      | Ok _ -> ()
      | Error e ->
        Alcotest.fail ("in-flight request dropped: " ^ Client.error_to_string e));
      Alcotest.(check bool) "server stopped" true (not (Server.running srv)))

let test_server_supervisor_restarts () =
  with_server (fun srv addr ->
      let restarts0 = Server.worker_restarts srv in
      (match call_on addr Protocol.Crash with
      | Error (Client.Refused (Protocol.Internal, _)) -> ()
      | r ->
        Alcotest.fail
          (match r with
          | Ok _ -> "crash replied ok"
          | Error e -> Client.error_to_string e));
      (* the replacement worker must pick up the next queued job *)
      (match call_on addr (Protocol.Sleep 0.01) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Client.error_to_string e));
      Alcotest.(check bool) "supervisor restarted the worker" true
        (Server.worker_restarts srv > restarts0))

let test_server_survives_corrupt_frames () =
  with_server (fun _srv addr ->
      let path = match addr with `Unix p -> p | `Tcp _ -> assert false in
      (* bogus length prefix: typed bad_request, then hang-up *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      Frame.write_raw fd "\xff\xff\xff\xffBOOM";
      (match Frame.read fd with
      | Ok reply -> begin
        match Protocol.response_of_json reply with
        | Ok (_, Protocol.Refused { code = Protocol.Bad_request; _ }) -> ()
        | _ -> Alcotest.fail "expected bad_request refusal"
      end
      | Error e -> Alcotest.fail (Frame.error_to_string e));
      Alcotest.(check bool) "connection closed after broken framing" true
        (Frame.read fd = Error Frame.Closed);
      Unix.close fd;
      (* malformed payload: refused, but the connection stays usable *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      Frame.write_raw fd "\x00\x00\x00\x05hello";
      (match Frame.read fd with
      | Ok reply -> begin
        match Protocol.response_of_json reply with
        | Ok (_, Protocol.Refused { code = Protocol.Bad_request; _ }) -> ()
        | _ -> Alcotest.fail "expected bad_request refusal"
      end
      | Error e -> Alcotest.fail (Frame.error_to_string e));
      Frame.write fd (Protocol.request_to_json Protocol.Ping);
      (match Frame.read fd with
      | Ok reply -> begin
        match Protocol.response_of_json reply with
        | Ok (_, Protocol.Reply _) -> ()
        | _ -> Alcotest.fail "ping after malformed frame should succeed"
      end
      | Error e -> Alcotest.fail (Frame.error_to_string e));
      Unix.close fd;
      (* the server still serves normal clients *)
      match call_on addr Protocol.Ping with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Client.error_to_string e))

(* --------------------- tracing and phase accounting --------------------- *)

(* One worker pinned by a long sleep; the next request waits in the queue,
   then executes.  The per-op latency histograms must attribute the wait
   to queue_ms and the handler run to exec_ms.  Assertions run after
   [with_server] returns — [Server.await] has joined the workers, so every
   reply's phase accounting has landed. *)
let test_server_phase_accounting () =
  Metrics.reset ();
  with_server (fun _srv addr ->
      let blocker =
        Thread.create (fun () -> call_on addr (Protocol.Sleep 0.25)) ()
      in
      Unix.sleepf 0.05;
      (match call_on addr (Protocol.Sleep 0.05) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Client.error_to_string e));
      Thread.join blocker);
  let h phase =
    Metrics.histogram (Printf.sprintf "serve.latency.sleep.%s_ms" phase)
  in
  Alcotest.(check int) "both sleeps in total_ms" 2
    (Metrics.histogram_count (h "total"));
  Alcotest.(check int) "both sleeps in queue_ms" 2
    (Metrics.histogram_count (h "queue"));
  Alcotest.(check int) "both sleeps in exec_ms" 2
    (Metrics.histogram_count (h "exec"));
  let queue_ms = Metrics.histogram_sum (h "queue") in
  let exec_ms = Metrics.histogram_sum (h "exec") in
  let total_ms = Metrics.histogram_sum (h "total") in
  Alcotest.(check bool) "queued request's wait lands in queue_ms" true
    (queue_ms >= 100.);
  Alcotest.(check bool) "handler runs land in exec_ms" true (exec_ms >= 200.);
  Alcotest.(check bool) "phases telescope into the total" true
    (queue_ms +. exec_ms <= total_ms +. 1.);
  Alcotest.(check int) "\"all\" pseudo-op aggregates" 2
    (Metrics.histogram_count (Metrics.histogram "serve.latency.all.total_ms"))

(* With span recording on, a traced request leaves a [serve.req.<op>] root
   tagged with the client's trace id and queue/exec phase children. *)
let test_server_request_spans () =
  Span.reset ();
  Span.set_recording true;
  Fun.protect ~finally:(fun () -> Span.set_recording false) @@ fun () ->
  with_server (fun _srv addr ->
      match Client.connect addr with
      | Error e -> Alcotest.fail (Client.error_to_string e)
      | Ok conn ->
        Fun.protect
          ~finally:(fun () -> Client.close conn)
          (fun () ->
            match
              Client.call ~trace_id:"t-span" conn (Protocol.Sleep 0.02)
            with
            | Ok _ -> ()
            | Error e -> Alcotest.fail (Client.error_to_string e)));
  match
    List.find_opt
      (fun (s : Span.t) -> s.Span.name = "serve.req.sleep")
      (Span.roots ())
  with
  | None -> Alcotest.fail "no serve.req.sleep span recorded"
  | Some s ->
    Alcotest.(check (option string)) "trace attr" (Some "t-span")
      (List.assoc_opt "trace" s.Span.attrs);
    Alcotest.(check (option string)) "result attr" (Some "ok")
      (List.assoc_opt "result" s.Span.attrs);
    let names = List.map (fun (c : Span.t) -> c.Span.name) s.Span.children in
    Alcotest.(check bool) "queue and exec phase children" true
      (List.mem "serve.phase.queue" names
      && List.mem "serve.phase.exec" names);
    let exec =
      List.find
        (fun (c : Span.t) -> c.Span.name = "serve.phase.exec")
        s.Span.children
    in
    Alcotest.(check bool) "exec phase covers the handler run" true
      (exec.Span.duration >= 0.015)

(* The flight recorder is always on: a served request leaves admitted /
   started events carrying its trace id, and [dump_flight] returns them
   over the wire without stopping the server. *)
let test_server_dump_flight () =
  Flightrec.clear Flightrec.global;
  with_server (fun srv addr ->
      (match Client.connect addr with
      | Error e -> Alcotest.fail (Client.error_to_string e)
      | Ok conn ->
        Fun.protect
          ~finally:(fun () -> Client.close conn)
          (fun () ->
            match
              Client.call ~trace_id:"t-flight" conn (Protocol.Sleep 0.01)
            with
            | Ok _ -> ()
            | Error e -> Alcotest.fail (Client.error_to_string e)));
      (match call_on addr Protocol.Dump_flight with
      | Error e -> Alcotest.fail (Client.error_to_string e)
      | Ok dump ->
        let events =
          match Json.member "events" dump with
          | Some (Json.List l) -> l
          | _ -> []
        in
        Alcotest.(check bool) "flight dump has events" true (events <> []);
        let kinds =
          List.filter_map
            (fun ev ->
              match Json.member "kind" ev with
              | Some (Json.String k) -> Some k
              | _ -> None)
            events
        in
        List.iter
          (fun k ->
            Alcotest.(check bool) (k ^ " recorded") true (List.mem k kinds))
          [ "serve.started"; "req.admitted"; "req.started" ];
        Alcotest.(check bool) "events carry the trace id" true
          (List.exists
             (fun ev ->
               match Json.member "fields" ev with
               | Some fields ->
                 Json.member "trace" fields = Some (Json.String "t-flight")
               | None -> false)
             events));
      Alcotest.(check bool) "server still running after dump" true
        (Server.running srv))

(* --------------------------- runtime health --------------------------- *)

(* A quiet server answers [Health] inline with a clean verdict. *)
let test_server_health_ok () =
  with_server (fun srv addr ->
      (match call_on addr Protocol.Health with
      | Error e -> Alcotest.fail (Client.error_to_string e)
      | Ok j -> (
        match Dash.of_health_json j with
        | Error msg -> Alcotest.fail msg
        | Ok h ->
          Alcotest.(check string) "clean verdict" "ok" h.Dash.status;
          Alcotest.(check int) "no stalled workers" 0 h.Dash.stalled_workers));
      (* the typed view parses the server's own JSON too *)
      match Dash.of_health_json (Server.health_json srv) with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail msg)

(* Chaos slows every queued request well past the stall budget: the
   reaper's watchdog must flag the worker while it is stuck (health
   degrades with a [worker_stalled] reason), and the cumulative
   [stalled_total] must keep the evidence after the worker recovers. *)
let test_server_watchdog_flags_stall () =
  let chaos =
    Chaos.validated { Chaos.none with Chaos.slow_rate = 1.0; slow_s = 0.4 }
  in
  with_server ~chaos ~stall_after_s:0.08 (fun srv addr ->
      let victim =
        Thread.create (fun () -> ignore (call_on addr (Protocol.Sleep 0.01))) ()
      in
      (* give the job time to start and outlive the 80 ms budget *)
      Unix.sleepf 0.25;
      (match Dash.of_health_json (Server.health_json srv) with
      | Error msg -> Alcotest.fail msg
      | Ok h ->
        Alcotest.(check bool) "health degrades during the stall" true
          (h.Dash.status <> "ok");
        Alcotest.(check bool) "watchdog counts the stuck worker" true
          (h.Dash.stalled_workers >= 1);
        Alcotest.(check bool) "reason names worker_stalled" true
          (List.exists
             (fun (r : Dash.reason) -> r.Dash.code = "worker_stalled")
             h.Dash.reasons));
      Thread.join victim;
      Unix.sleepf 0.05;
      (* after recovery, the live flag clears but the counter remembers *)
      match call_on addr Protocol.Health with
      | Error e -> Alcotest.fail (Client.error_to_string e)
      | Ok j -> (
        match Dash.of_health_json j with
        | Error msg -> Alcotest.fail msg
        | Ok h ->
          Alcotest.(check bool) "stall recorded cumulatively" true
            (h.Dash.stalled_total >= 1)))

(* [metrics_port = Some 0] starts the exposition listener on an
   ephemeral port; a live scrape must come back as valid OpenMetrics
   carrying the serve counters and runtime gauges, and [/health] must
   serve the verdict as JSON. *)
let test_server_metrics_scrape () =
  with_server ~metrics_port:0 (fun srv addr ->
      ignore (call_on addr Protocol.Ping);
      match Server.metrics_port srv with
      | None -> Alcotest.fail "metrics listener did not start"
      | Some port ->
        (match Metrics_http.fetch ~port ~path:"/metrics" with
        | Error e -> Alcotest.fail ("scrape failed: " ^ e)
        | Ok body -> (
          match Openmetrics.parse body with
          | Error e -> Alcotest.fail ("scrape does not parse: " ^ e)
          | Ok samples ->
            Alcotest.(check bool) "request counter exposed" true
              (match Openmetrics.find samples "serve_requests_total" with
              | Some v -> v >= 1.
              | None -> false);
            Alcotest.(check bool) "runtime gauges exposed at scrape time" true
              (Openmetrics.find samples "runtime_gc_heap_mb" <> None)));
        (match Metrics_http.fetch ~port ~path:"/health" with
        | Error e -> Alcotest.fail ("health fetch failed: " ^ e)
        | Ok body -> (
          match Dash.of_health_json (Json.of_string body) with
          | Error msg -> Alcotest.fail msg
          | Ok h ->
            Alcotest.(check string) "healthy over HTTP" "ok" h.Dash.status));
        match Metrics_http.fetch ~port ~path:"/nope" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "unknown path should not 200")

(* ------------------------------- dash ------------------------------- *)

let contains hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

let test_dash_snapshot () =
  let pct c p50 p95 p99 =
    Json.Obj
      [ ("count", Json.Int c); ("p50", Json.of_float p50);
        ("p95", Json.of_float p95); ("p99", Json.of_float p99) ]
  in
  let snap_json =
    Json.Obj
      [
        ("state", Json.String "running");
        ("uptime_s", Json.Float 12.5);
        ("workers", Json.Int 2);
        ("queue_length", Json.Int 1);
        ("queue_cap", Json.Int 8);
        ("inflight", Json.Int 2);
        ( "metrics",
          (* the {"type","value"} entry shape of Metrics.to_json *)
          let ctr n =
            Json.Obj
              [ ("type", Json.String "counter"); ("value", Json.Int n) ]
          in
          Json.Obj
            [
              ("serve.requests", ctr 100);
              ("serve.replies_ok", ctr 90);
              ("serve.refused_timeout", ctr 10);
              ("serve.worker_restarts", ctr 1);
              ("serve.connections", ctr 7);
            ] );
        ( "latency",
          Json.Obj
            [
              ( "sleep",
                Json.Obj
                  [
                    ("queue_ms", pct 5 1. 2. 3.);
                    ("exec_ms", pct 5 50. 60. 70.);
                    ("total_ms", pct 5 51. 62. 73.);
                  ] );
              ("all", Json.Obj [ ("total_ms", pct 6 10. 60. 70.) ]);
              (* An empty histogram must be filtered out of the table. *)
              ("ping", Json.Obj [ ("total_ms", pct 0 0. 0. 0.) ]);
            ] );
      ]
  in
  (match Dash.of_stats_json snap_json with
  | Error msg -> Alcotest.fail msg
  | Ok snap ->
    Alcotest.(check string) "state" "running" snap.Dash.state;
    Alcotest.(check int) "workers" 2 snap.Dash.workers;
    Alcotest.(check int) "queue" 1 snap.Dash.queue_length;
    Alcotest.(check int) "inflight" 2 snap.Dash.inflight;
    Alcotest.(check int) "requests counter" 100 snap.Dash.requests;
    Alcotest.(check (list (pair string int))) "only refusals seen"
      [ ("timeout", 10) ]
      snap.Dash.refused;
    Alcotest.(check (list string)) "\"all\" first, empty ops dropped"
      [ "all"; "sleep" ]
      (List.map (fun l -> l.Dash.op) snap.Dash.latency);
    let sleep = List.nth snap.Dash.latency 1 in
    Alcotest.(check bool) "queue percentiles parsed" true
      (match sleep.Dash.queue with
      | Some p -> p.Dash.p95 = 2.
      | None -> false);
    let prev = { snap with Dash.replies_ok = 40 } in
    Alcotest.(check (float 1e-9)) "qps from two snapshots" 10.
      (Dash.qps ~prev ~dt:5. snap);
    let screen = Dash.render ~qps:10. snap in
    Alcotest.(check bool) "render shows the header" true
      (contains screen "relaware top");
    Alcotest.(check bool) "render shows the op rows" true
      (contains screen "sleep"));
  match Dash.of_stats_json (Json.Obj []) with
  | Error msg ->
    Alcotest.(check bool) "error names the missing field" true
      (contains msg "state")
  | Ok _ -> Alcotest.fail "expected parse error on empty stats"

let test_dash_of_live_stats () =
  with_server (fun _srv addr ->
      ignore (call_on addr Protocol.Ping);
      match call_on addr Protocol.Stats with
      | Error e -> Alcotest.fail (Client.error_to_string e)
      | Ok stats -> (
        match Dash.of_stats_json stats with
        | Error msg -> Alcotest.fail msg
        | Ok snap ->
          Alcotest.(check string) "live state" "running" snap.Dash.state;
          Alcotest.(check int) "live queue cap" 4 snap.Dash.queue_cap;
          Alcotest.(check bool) "live requests counted" true
            (snap.Dash.requests >= 1);
          Alcotest.(check bool) "live latency summary present" true
            (List.exists (fun l -> l.Dash.op = "all") snap.Dash.latency)))

(* In-process chaos soak: saturating concurrent clients against an
   injected-fault server must end with the server alive and clients
   having succeeded through retries — graceful degradation, not a crash
   or deadlock.  The forked multi-process version runs in @serve-smoke. *)
let test_soak_degrades_gracefully () =
  let chaos =
    Chaos.validated
      { Chaos.kill_rate = 0.02; crash_rate = 0.05; slow_rate = 0.1;
        slow_s = 0.03; seed = 5 }
  in
  with_server ~workers:2 ~queue_cap:4 ~chaos (fun srv addr ->
      let report =
        Soak.run
          {
            (Soak.default ~addr) with
            clients = 4;
            duration_s = 0.5;
            deadline_s = 0.1;
            corrupt_rate = 0.1;
            heavy_rate = 0.3;
            sleep_s = 0.05;
            seed = 17;
          }
      in
      Alcotest.(check bool) "server alive after the storm" true
        report.Soak.server_alive;
      Alcotest.(check bool) "clients succeeded through retries" true
        (report.Soak.ok > 0);
      Alcotest.(check bool) "still accepting work" true (Server.running srv))

let suite =
  [
    ("frame: roundtrip", `Quick, test_frame_roundtrip);
    ("frame: oversized rejected", `Quick, test_frame_oversized);
    ("frame: malformed keeps stream", `Quick, test_frame_malformed_keeps_stream);
    ("frame: closed", `Quick, test_frame_closed);
    ("protocol: roundtrip", `Quick, test_protocol_roundtrip);
    ("protocol: rejects bad requests", `Quick, test_protocol_rejects);
    ("bqueue: bounds and close", `Quick, test_bqueue_bounds);
    ("bqueue: blocking pop", `Quick, test_bqueue_blocking_pop);
    ("chaos: deterministic decisions", `Quick, test_chaos_deterministic);
    ("client: backoff schedule deterministic", `Quick,
     test_client_backoff_deterministic);
    ("server: ping and stats inline", `Quick, test_server_ping_stats);
    ("server: deadline expiry is a typed timeout", `Quick,
     test_server_deadline_timeout);
    ("server: queued job cancelled at deadline", `Quick,
     test_server_queued_job_cancelled);
    ("server: full queue sheds with overloaded", `Quick,
     test_server_overload_sheds);
    ("server: graceful drain completes in-flight", `Quick,
     test_server_drain_completes_inflight);
    ("server: supervisor restarts crashed workers", `Quick,
     test_server_supervisor_restarts);
    ("server: survives corrupt frames", `Quick,
     test_server_survives_corrupt_frames);
    ("server: queue/exec phase accounting", `Quick,
     test_server_phase_accounting);
    ("server: traced requests leave phase spans", `Quick,
     test_server_request_spans);
    ("server: dump_flight over the wire", `Quick, test_server_dump_flight);
    ("server: health reports ok when quiet", `Quick, test_server_health_ok);
    ("server: watchdog flags a stalled worker", `Quick,
     test_server_watchdog_flags_stall);
    ("server: live /metrics scrape parses", `Quick,
     test_server_metrics_scrape);
    ("dash: parses a captured stats snapshot", `Quick, test_dash_snapshot);
    ("dash: parses live stats", `Quick, test_dash_of_live_stats);
    ("soak: degrades gracefully under chaos", `Quick,
     test_soak_degrades_gracefully);
  ]
