(* Property and unit tests for the pure-OCaml regression kernel behind
   surrogate characterization: exact recovery of low-degree polynomials,
   determinism (bitwise, and across worker counts), confidence growth
   away from the training hull, and typed errors on degenerate designs. *)

module Ridge = Aging_fit.Ridge
module Linalg = Aging_fit.Linalg
module Trainset = Aging_fit.Trainset
module Pool = Aging_util.Pool
module Rng = Aging_util.Rng

let uniform rng lo hi = lo +. ((hi -. lo) *. Rng.float rng)

(* Deterministic scattered 2-D training set covering [-1, 2] x [0, 3]. *)
let training_rows n seed =
  let rng = Rng.create seed in
  Array.init n (fun _ -> [| uniform rng (-1.) 2.; uniform rng 0. 3. |])

let apply_poly coeffs x =
  (* coeffs for 1, a, b, a^2, ab, b^2 *)
  let a = x.(0) and b = x.(1) in
  coeffs.(0) +. (coeffs.(1) *. a) +. (coeffs.(2) *. b)
  +. (coeffs.(3) *. a *. a)
  +. (coeffs.(4) *. a *. b)
  +. (coeffs.(5) *. b *. b)

let fit_exn ?lambda ?basis ?drop_constant rows targets =
  match Ridge.fit ?lambda ?basis ?drop_constant ~rows ~targets () with
  | Ok m -> m
  | Error e -> Alcotest.failf "unexpected fit error: %s" (Ridge.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Linalg                                                              *)
(* ------------------------------------------------------------------ *)

let test_linalg_solve () =
  (* A known well-conditioned 3x3 system. *)
  let a = [| 4.; 1.; 0.; 1.; 3.; 1.; 0.; 1.; 2. |] in
  let x_true = [| 1.; -2.; 3. |] in
  let b = [| 4. -. 2.; 1. -. 6. +. 3.; -2. +. 6. |] in
  match Linalg.solve a 3 b with
  | None -> Alcotest.fail "solve reported singular"
  | Some x ->
    Array.iteri
      (fun i v -> Fixtures.check_close ~tol:1e-12 "solution" x_true.(i) v)
      x

let test_linalg_singular () =
  let a = [| 1.; 2.; 2.; 4. |] in
  Alcotest.(check bool)
    "singular detected" true
    (Linalg.solve a 2 [| 1.; 2. |] = None)

(* ------------------------------------------------------------------ *)
(* Exact recovery                                                      *)
(* ------------------------------------------------------------------ *)

let test_exact_quadratic () =
  let coeffs = [| 0.7; -1.3; 2.1; 0.4; -0.9; 1.6 |] in
  let rows = training_rows 24 5L in
  let targets = Array.map (apply_poly coeffs) rows in
  let m = fit_exn ~lambda:0. ~basis:(Ridge.Poly 2) rows targets in
  let probes = training_rows 10 6L in
  Array.iter
    (fun x ->
      Fixtures.check_close ~tol:1e-9 "quadratic recovery" (apply_poly coeffs x)
        (Ridge.predict m x))
    probes;
  (* Exact model: LOO residuals are numerically zero. *)
  Alcotest.(check bool) "sigma ~ 0" true (Ridge.sigma m < 1e-9)

let test_exact_tensor () =
  (* f = (1 + 2a + a^3) * (2 - b): tensor degrees (3, 1). *)
  let f x =
    let a = x.(0) and b = x.(1) in
    (1. +. (2. *. a) +. (a ** 3.)) *. (2. -. b)
  in
  let rows = training_rows 30 7L in
  let targets = Array.map f rows in
  let m = fit_exn ~lambda:0. ~basis:(Ridge.Tensor [| 3; 1 |]) rows targets in
  Array.iter
    (fun x ->
      Fixtures.check_close ~tol:1e-9 "tensor recovery" (f x) (Ridge.predict m x))
    (training_rows 10 8L)

let test_terms_basis () =
  (* An explicit exponent list spelling out a tensor basis in the
     tensor's own column order must produce the same model: identical
     design matrix, so predictions and confidence agree bitwise. *)
  let rows = training_rows 30 7L in
  let f x =
    let a = x.(0) and b = x.(1) in
    (1. +. (2. *. a) +. (a ** 3.)) *. (2. -. b)
  in
  let targets = Array.map f rows in
  let tensor = fit_exn ~lambda:0. ~basis:(Ridge.Tensor [| 3; 1 |]) rows targets in
  (* The tensor's own graded-lexicographic column order. *)
  let terms =
    [|
      [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |]; [| 1; 1 |];
      [| 2; 0 |]; [| 2; 1 |]; [| 3; 0 |]; [| 3; 1 |];
    |]
  in
  let explicit = fit_exn ~lambda:0. ~basis:(Ridge.Terms terms) rows targets in
  Array.iter
    (fun x ->
      Alcotest.(check bool) "terms = tensor prediction" true
        (Ridge.predict explicit x = Ridge.predict tensor x);
      Alcotest.(check bool) "terms = tensor confidence" true
        (Ridge.confidence explicit x = Ridge.confidence tensor x))
    (training_rows 10 8L);
  (* Structured sparsity — dropping the cross terms — still recovers a
     function that has none. *)
  let g x = 1. +. (0.5 *. (x.(0) ** 2.)) -. (1.5 *. x.(1)) in
  let sparse =
    fit_exn ~lambda:0.
      ~basis:(Ridge.Terms [| [| 0; 0 |]; [| 1; 0 |]; [| 2; 0 |]; [| 0; 1 |] |])
      rows (Array.map g rows)
  in
  Array.iter
    (fun x ->
      Fixtures.check_close ~tol:1e-9 "sparse recovery" (g x)
        (Ridge.predict sparse x))
    (training_rows 10 9L);
  (* Validation: empty list, arity mismatch, negative exponent. *)
  let fit_with basis =
    Ridge.fit ~basis ~rows ~targets ()
  in
  List.iter
    (fun (name, basis) ->
      Alcotest.(check bool) name true
        (match fit_with basis with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [
      ("empty Terms rejected", Ridge.Terms [||]);
      ("arity mismatch rejected", Ridge.Terms [| [| 1 |] |]);
      ("negative exponent rejected", Ridge.Terms [| [| -1; 0 |] |]);
    ]

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

let noisy_targets rows seed =
  let rng = Rng.create seed in
  Array.map
    (fun x ->
      apply_poly [| 1.; 0.5; -0.3; 0.2; 0.1; -0.4 |] x
      +. uniform rng (-0.01) 0.01)
    rows

let test_fit_bitwise_deterministic () =
  let rows = training_rows 20 11L in
  let targets = noisy_targets rows 12L in
  let m1 = fit_exn ~basis:(Ridge.Poly 2) rows targets in
  let m2 = fit_exn ~basis:(Ridge.Poly 2) rows targets in
  let probes = training_rows 16 13L in
  Array.iter
    (fun x ->
      Alcotest.(check bool) "bitwise equal prediction" true
        (Ridge.predict m1 x = Ridge.predict m2 x);
      Alcotest.(check bool) "bitwise equal confidence" true
        (Ridge.confidence m1 x = Ridge.confidence m2 x))
    probes

let test_fit_deterministic_across_jobs () =
  (* The kernel is sequential inside one work unit; fanning identical
     fits over worker domains must return bitwise-identical models —
     the invariant `--jobs` relies on. *)
  let rows = training_rows 20 21L in
  let targets = noisy_targets rows 22L in
  let probes = training_rows 8 23L in
  let run () =
    let m = fit_exn ~basis:(Ridge.Poly 2) rows targets in
    Array.map (fun x -> (Ridge.predict m x, Ridge.confidence m x)) probes
  in
  let sequential = run () in
  let parallel = Pool.map ~jobs:4 (fun _ -> run ()) [ 0; 1; 2; 3 ] in
  List.iter
    (fun r -> Alcotest.(check bool) "jobs-invariant" true (r = sequential))
    parallel

let test_permutation_invariant () =
  let rows = training_rows 18 31L in
  let targets = noisy_targets rows 32L in
  let n = Array.length rows in
  (* Deterministic shuffle. *)
  let perm = Array.init n Fun.id in
  let rng = Rng.create 33L in
  for i = n - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  let rows' = Array.map (fun i -> rows.(i)) perm in
  let targets' = Array.map (fun i -> targets.(i)) perm in
  let m1 = fit_exn ~basis:(Ridge.Poly 2) rows targets in
  let m2 = fit_exn ~basis:(Ridge.Poly 2) rows' targets' in
  Array.iter
    (fun x ->
      let p1 = Ridge.predict m1 x and p2 = Ridge.predict m2 x in
      Fixtures.check_close ~tol:1e-9 "permutation-invariant prediction" p1 p2)
    (training_rows 12 34L)

(* ------------------------------------------------------------------ *)
(* Confidence grows away from the hull                                 *)
(* ------------------------------------------------------------------ *)

let test_confidence_widens () =
  let rows = training_rows 20 41L in
  let targets = noisy_targets rows 42L in
  let m = fit_exn ~basis:(Ridge.Poly 2) rows targets in
  (* Center of the training box is (0.5, 1.5); walk a ray outward with
     doubling distances well past the hull. *)
  let at t = [| 0.5 +. (t *. 1.); 1.5 +. (t *. 0.7) |] in
  let prev = ref (Ridge.confidence m (at 2.)) in
  List.iter
    (fun t ->
      let c = Ridge.confidence m (at t) in
      Alcotest.(check bool)
        (Printf.sprintf "confidence at t=%g grows" t)
        true
        (c >= !prev *. (1. -. 1e-9));
      prev := c)
    [ 4.; 8.; 16.; 32. ];
  (* And the hull interior is tighter than far outside. *)
  Alcotest.(check bool) "interior tighter than far field" true
    (Ridge.confidence m [| 0.5; 1.5 |] < Ridge.confidence m (at 32.))

(* Regression: a 1/y-weighted fit on tiny absolute targets (delay-like,
   ~1e-10 s) builds its normal matrix from ~1e10-weighted rows, so an
   unweighted query basis reads leverage ~ y^2 ~ 0 and the interval
   would never widen off the hull.  Scaling the query by its own weight
   (1/prediction) restores the off-hull growth the serve gate relies
   on. *)
let test_weighted_confidence_widens () =
  let rows = training_rows 20 41L in
  let scale = 1e-10 in
  let rng = Rng.create 91L in
  let targets =
    Array.map
      (fun x ->
        (* Positive on the training box and along the probe ray. *)
        scale
        *. (2. +. x.(0) +. (0.5 *. x.(1)) +. (0.01 *. uniform rng (-1.) 1.)))
      rows
  in
  let weights = Array.map (fun y -> 1. /. y) targets in
  let m =
    match Ridge.fit ~basis:(Ridge.Poly 2) ~weights ~rows ~targets () with
    | Ok m -> m
    | Error e -> Alcotest.failf "weighted fit: %s" (Ridge.error_to_string e)
  in
  let at t = [| 0.5 +. t; 1.5 +. (0.7 *. t) |] in
  let conf_at x =
    let p = Float.abs (Ridge.predict m x) in
    Ridge.confidence ~weight:(1. /. Float.max p 1e-300) m x
  in
  let prev = ref (conf_at (at 2.)) in
  List.iter
    (fun t ->
      let c = conf_at (at t) in
      Alcotest.(check bool)
        (Printf.sprintf "weighted confidence at t=%g grows" t)
        true
        (c >= !prev *. (1. -. 1e-9));
      prev := c)
    [ 4.; 8.; 16.; 32. ];
  Alcotest.(check bool) "weighted interior tighter than far field" true
    (conf_at [| 0.5; 1.5 |] < conf_at (at 32.));
  (* The unweighted query leverage is exactly the degenerate quantity
     the gate must not use against this fit: flat ~0 even far away. *)
  Alcotest.(check bool) "unweighted leverage degenerates to ~0" true
    (Ridge.leverage m (at 32.) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Typed errors on degenerate designs                                  *)
(* ------------------------------------------------------------------ *)

let test_degenerate_constant_column () =
  let rows = Array.init 10 (fun i -> [| float_of_int i; 7. |]) in
  let targets = Array.map (fun x -> x.(0)) rows in
  (match Ridge.fit ~basis:(Ridge.Poly 1) ~rows ~targets () with
  | Error (Ridge.Degenerate_column 1) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Ridge.error_to_string e)
  | Ok _ -> Alcotest.fail "constant column not detected");
  (* drop_constant neutralizes it instead. *)
  let m = fit_exn ~basis:(Ridge.Poly 1) ~drop_constant:true rows targets in
  Fixtures.check_close ~tol:1e-6 "still fits the live column" 3.
    (Ridge.predict m [| 3.; 7. |])

let test_degenerate_duplicate_rows () =
  (* Collinear features (x2 = x1): rank-deficient normal matrix with
     lambda = 0 must surface as Singular, never as NaN coefficients. *)
  let rows = Array.init 9 (fun i -> [| float_of_int i; float_of_int i |]) in
  let targets = Array.map (fun x -> x.(0)) rows in
  (match Ridge.fit ~lambda:0. ~basis:(Ridge.Poly 1) ~rows ~targets () with
  | Error Ridge.Singular -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Ridge.error_to_string e)
  | Ok m ->
    (* If a pivot survived rounding, the fit must still be finite. *)
    Alcotest.(check bool) "no NaN escape" true
      (Float.is_finite (Ridge.predict m [| 1.; 1. |])));
  (* Ridge regularization makes the same design well-posed. *)
  let m = fit_exn ~lambda:1e-6 ~basis:(Ridge.Poly 1) rows targets in
  Alcotest.(check bool) "ridge prediction finite" true
    (Float.is_finite (Ridge.predict m [| 4.; 4. |]))

let test_non_finite_row () =
  let rows = [| [| 0.; 1. |]; [| Float.nan; 2. |]; [| 2.; 3. |] |] in
  let targets = [| 0.; 1.; 2. |] in
  match Ridge.fit ~rows ~targets () with
  | Error (Ridge.Non_finite { row = 1 }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Ridge.error_to_string e)
  | Ok _ -> Alcotest.fail "NaN row not detected"

let test_too_few_rows () =
  let rows = training_rows 4 51L in
  let targets = Array.map (fun x -> x.(0)) rows in
  match Ridge.fit ~lambda:0. ~basis:(Ridge.Poly 2) ~rows ~targets () with
  | Error (Ridge.Too_few_rows { rows = 4; params = 6 }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Ridge.error_to_string e)
  | Ok _ -> Alcotest.fail "under-determined LS design not detected"

(* ------------------------------------------------------------------ *)
(* Ensemble                                                            *)
(* ------------------------------------------------------------------ *)

let test_ensemble_spread () =
  let rows = training_rows 24 61L in
  let targets = noisy_targets rows 62L in
  let models =
    match Ridge.ensemble ~folds:4 ~basis:(Ridge.Poly 2) ~rows ~targets () with
    | Ok ms -> ms
    | Error e -> Alcotest.failf "ensemble: %s" (Ridge.error_to_string e)
  in
  Alcotest.(check int) "fold count" 4 (List.length models);
  let interior = Ridge.spread models [| 0.5; 1.5 |] in
  let far = Ridge.spread models [| 20.; 40. |] in
  Alcotest.(check bool) "spread non-negative" true (interior >= 0.);
  Alcotest.(check bool) "spread grows off-hull" true (far > interior)

(* ------------------------------------------------------------------ *)
(* Trainset                                                            *)
(* ------------------------------------------------------------------ *)

let test_trainset_basics () =
  let t = Trainset.create () in
  Trainset.add t ~key:"a" ~features:[| 1.; 2. |] ~target:3.;
  Trainset.add t ~key:"a" ~features:[| 4.; 5. |] ~target:6.;
  Trainset.add t ~key:"b" ~features:[| 7. |] ~target:8.;
  Alcotest.(check int) "size" 3 (Trainset.size t);
  (match Trainset.rows t "a" with
  | [ r1; r2 ] ->
    Fixtures.check_close "insertion order" 3. r1.Trainset.tr_target;
    Fixtures.check_close "insertion order" 6. r2.Trainset.tr_target
  | l -> Alcotest.failf "expected 2 rows, got %d" (List.length l));
  Alcotest.(check bool) "absent key" true (Trainset.rows t "zzz" = []);
  let d1 = Trainset.digest t in
  Trainset.add t ~key:"b" ~features:[| 9. |] ~target:10.;
  Alcotest.(check bool) "digest tracks content" true (d1 <> Trainset.digest t);
  Alcotest.(check bool) "not frozen yet" false (Trainset.is_frozen t);
  let d_pre = Trainset.digest t in
  Trainset.freeze t;
  Alcotest.(check bool) "frozen" true (Trainset.is_frozen t);
  (* The digest cached at freeze time must equal the live computation. *)
  Alcotest.(check string) "frozen digest matches live digest" d_pre
    (Trainset.digest t);
  Alcotest.check_raises "add after freeze"
    (Invalid_argument "Trainset.add: pool is frozen") (fun () ->
      Trainset.add t ~key:"a" ~features:[| 0. |] ~target:0.)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let coeff_gen = QCheck2.Gen.float_range (-3.) 3.

let prop_recovers_random_quadratics =
  Fixtures.qtest ~count:60 "random quadratics recovered to 1e-9"
    QCheck2.Gen.(array_size (return 6) coeff_gen)
    (fun coeffs ->
      let rows = training_rows 25 77L in
      let targets = Array.map (apply_poly coeffs) rows in
      match Ridge.fit ~lambda:0. ~basis:(Ridge.Poly 2) ~rows ~targets () with
      | Error _ -> false
      | Ok m ->
        Array.for_all
          (fun x ->
            let scale = 1. +. Float.abs (apply_poly coeffs x) in
            Float.abs (Ridge.predict m x -. apply_poly coeffs x) /. scale
            < 1e-9)
          (training_rows 8 78L))

let prop_confidence_monotone_on_rays =
  Fixtures.qtest ~count:60 "confidence widens along random outward rays"
    QCheck2.Gen.(pair (float_range 0. 6.28) (int_range 0 1000))
    (fun (angle, salt) ->
      let rows = training_rows 20 (Int64.of_int (101 + salt)) in
      let targets = noisy_targets rows (Int64.of_int (202 + salt)) in
      match Ridge.fit ~basis:(Ridge.Poly 2) ~rows ~targets () with
      | Error _ -> false
      | Ok m ->
        let dx = cos angle and dy = sin angle in
        let at t = [| 0.5 +. (t *. dx); 1.5 +. (t *. dy) |] in
        let ok = ref true in
        let prev = ref (Ridge.confidence m (at 3.)) in
        List.iter
          (fun t ->
            let c = Ridge.confidence m (at t) in
            if c < !prev *. (1. -. 1e-9) then ok := false;
            prev := c)
          [ 6.; 12.; 24. ];
        !ok)

let suite =
  [
    ("linalg: solve", `Quick, test_linalg_solve);
    ("linalg: singular", `Quick, test_linalg_singular);
    ("ridge: exact quadratic recovery", `Quick, test_exact_quadratic);
    ("ridge: exact tensor recovery", `Quick, test_exact_tensor);
    ("ridge: explicit Terms basis", `Quick, test_terms_basis);
    ("ridge: bitwise deterministic", `Quick, test_fit_bitwise_deterministic);
    ("ridge: deterministic across jobs", `Quick,
     test_fit_deterministic_across_jobs);
    ("ridge: permutation invariant", `Quick, test_permutation_invariant);
    ("ridge: confidence widens off-hull", `Quick, test_confidence_widens);
    ("ridge: weighted confidence widens off-hull", `Quick,
     test_weighted_confidence_widens);
    ("ridge: constant column typed error", `Quick,
     test_degenerate_constant_column);
    ("ridge: collinear design typed error", `Quick,
     test_degenerate_duplicate_rows);
    ("ridge: non-finite typed error", `Quick, test_non_finite_row);
    ("ridge: too few rows typed error", `Quick, test_too_few_rows);
    ("ridge: ensemble spread", `Quick, test_ensemble_spread);
    ("trainset: basics", `Quick, test_trainset_basics);
  ]

let props = [ prop_recovers_random_quadratics; prop_confidence_monotone_on_rays ]
