module Scenario = Aging_physics.Scenario
module Nldm = Aging_liberty.Nldm
module Axes = Aging_liberty.Axes
module Library = Aging_liberty.Library
module Characterize = Aging_liberty.Characterize
module Merge = Aging_liberty.Merge
module Io = Aging_liberty.Io
module Catalog = Aging_cells.Catalog
module Degradation_library = Aging_core.Degradation_library
module Cell = Aging_cells.Cell

let sample_table =
  Nldm.make ~slews:[| 1e-11; 1e-10 |] ~loads:[| 1e-15; 1e-14 |]
    ~values:[| [| 1e-11; 2e-11 |]; [| 3e-11; 4e-11 |] |]

let test_nldm_make_validation () =
  let bad axis = Nldm.make ~slews:axis ~loads:[| 1.; 2. |] ~values:[| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.check_raises "non-monotone" (Invalid_argument "Nldm.make: slew axis not increasing")
    (fun () -> ignore (bad [| 2.; 1. |]));
  Alcotest.check_raises "short axis" (Invalid_argument "Nldm.make: axes need >= 2 points")
    (fun () -> ignore (bad [| 1. |]));
  Alcotest.check_raises "shape" (Invalid_argument "Nldm.make: row count mismatch")
    (fun () ->
      ignore
        (Nldm.make ~slews:[| 1.; 2.; 3. |] ~loads:[| 1.; 2. |]
           ~values:[| [| 1.; 2. |]; [| 3.; 4. |] |]))

let test_nldm_lookup () =
  Alcotest.(check (float 1e-15)) "grid point" 1e-11
    (Nldm.lookup sample_table ~slew:1e-11 ~load:1e-15);
  Alcotest.(check (float 1e-15)) "center" 2.5e-11
    (Nldm.lookup sample_table ~slew:5.5e-11 ~load:5.5e-15)

let test_nldm_map_fold () =
  let doubled = Nldm.map (fun v -> 2. *. v) sample_table in
  Alcotest.(check (float 1e-15)) "map" 8e-11 (Nldm.max_value doubled);
  Alcotest.(check (float 1e-15)) "min" 1e-11 (Nldm.min_value sample_table);
  let diff = Nldm.map2 (fun a b -> b -. a) sample_table doubled in
  Alcotest.(check (float 1e-15)) "map2" 4e-11 (Nldm.max_value diff);
  Alcotest.(check int) "fold count" 4 (Nldm.fold (fun n _ -> n + 1) 0 sample_table)

let test_axes () =
  Alcotest.(check int) "paper OPC count" 49 (Axes.count Axes.paper);
  Alcotest.(check int) "coarse OPC count" 9 (Axes.count Axes.coarse);
  Alcotest.(check (float 0.)) "paper min slew" 5e-12 Axes.paper.Axes.slews.(0);
  Alcotest.(check (float 0.)) "paper max load" 20e-15
    Axes.paper.Axes.loads.(Array.length Axes.paper.Axes.loads - 1)

let fresh_entry name = Library.find_exn (Lazy.force Fixtures.fresh_library) name
let aged_entry name = Library.find_exn (Lazy.force Fixtures.aged_library) name

let test_characterized_inverter () =
  let e = fresh_entry "INV_X1" in
  let arc = List.hd e.Library.arcs in
  Alcotest.(check bool) "negative unate" true (arc.Library.sense = Library.Negative);
  let d = Library.delay_of arc ~dir:Library.Rise ~slew:4e-11 ~load:2e-15 in
  Alcotest.(check bool) "plausible delay" true (d > 5e-12 && d < 1e-10);
  let s = Library.out_slew_of arc ~dir:Library.Rise ~slew:4e-11 ~load:2e-15 in
  Alcotest.(check bool) "plausible slew" true (s > 5e-12 && s < 2e-10)

let test_delay_monotone_in_load () =
  let e = fresh_entry "NAND2_X1" in
  let arc = List.hd e.Library.arcs in
  let d load = Library.delay_of arc ~dir:Library.Fall ~slew:4e-11 ~load in
  Alcotest.(check bool) "monotone" true (d 1e-15 < d 8e-15 && d 8e-15 < d 1.8e-14)

let test_aging_slows_rise () =
  let fa = List.hd (fresh_entry "NAND2_X1").Library.arcs in
  let aa = List.hd (aged_entry "NAND2_X1").Library.arcs in
  let f = Library.delay_of fa ~dir:Library.Rise ~slew:4e-11 ~load:4e-15 in
  let a = Library.delay_of aa ~dir:Library.Rise ~slew:4e-11 ~load:4e-15 in
  Alcotest.(check bool) "aged rise slower" true (a > f);
  Alcotest.(check bool) "increase below 60%" true (a /. f < 1.6)

let test_nor_fall_improves_at_large_slew () =
  let fa = List.hd (fresh_entry "NOR2_X1").Library.arcs in
  let aa = List.hd (aged_entry "NOR2_X1").Library.arcs in
  let slew = 9.47e-10 and load = 5e-16 in
  let f = Library.delay_of fa ~dir:Library.Fall ~slew ~load in
  let a = Library.delay_of aa ~dir:Library.Fall ~slew ~load in
  Alcotest.(check bool) "fall improved (paper Fig. 1b)" true (a < f)

let test_flipflop_entry () =
  let e = fresh_entry "DFF_X1" in
  Alcotest.(check int) "one merged launch arc" 1 (List.length e.Library.arcs);
  let arc = List.hd e.Library.arcs in
  Alcotest.(check string) "from CK" "CK" arc.Library.from_pin;
  Alcotest.(check string) "to Q" "Q" arc.Library.to_pin;
  Alcotest.(check bool) "setup positive" true (e.Library.setup_time > 0.);
  Alcotest.(check bool) "aged setup larger" true
    ((aged_entry "DFF_X1").Library.setup_time > e.Library.setup_time)

let test_out_direction () =
  let arc = List.hd (fresh_entry "INV_X1").Library.arcs in
  Alcotest.(check bool) "inverting" true
    (Library.out_direction arc ~in_dir:Library.Rise = Library.Fall)

let test_merge_indexed_names () =
  Alcotest.(check string) "indexed name" "NAND2_X1@0.4_0.6"
    (Merge.indexed_name ~base:"NAND2_X1"
       (Scenario.corner ~lambda_p:0.4 ~lambda_n:0.6));
  let base, corner = Merge.split_indexed "NAND2_X1@0.4_0.6" in
  Alcotest.(check string) "base" "NAND2_X1" base;
  (match corner with
  | Some c ->
    Alcotest.(check bool) "corner" true
      (Scenario.equal c (Scenario.corner ~lambda_p:0.4 ~lambda_n:0.6))
  | None -> Alcotest.fail "no corner");
  Alcotest.(check bool) "plain name" true (snd (Merge.split_indexed "INV_X1") = None)

let test_merge_complete () =
  let cells = [ Catalog.find_exn "INV_X1"; Catalog.find_exn "NAND2_X1" ] in
  let corners =
    [ Scenario.fresh; Scenario.worst_case; Scenario.corner ~lambda_p:0.5 ~lambda_n:0.5 ]
  in
  let lib = Merge.complete ~cells ~axes:Axes.coarse ~corners ~name:"mini" () in
  Alcotest.(check int) "cells x corners" 6 (List.length (Library.entries lib));
  Alcotest.(check bool) "indexed entry resolvable" true
    (Library.find lib "INV_X1@1.0_1.0" <> None)

let test_library_duplicate_rejected () =
  let e = fresh_entry "INV_X1" in
  Alcotest.check_raises "duplicate" (Invalid_argument "Library.create: duplicate INV_X1")
    (fun () -> ignore (Library.create ~lib_name:"dup" ~axes:Axes.coarse [ e; e ]))

let test_io_roundtrip () =
  let lib = Lazy.force Fixtures.fresh_library in
  let reloaded = Io.of_string (Io.to_string lib) in
  Alcotest.(check int) "entry count" (List.length (Library.entries lib))
    (List.length (Library.entries reloaded));
  List.iter
    (fun (e : Library.entry) ->
      let r = Library.find_exn reloaded e.Library.indexed_name in
      Alcotest.(check (float 1e-18)) "setup preserved" e.Library.setup_time
        r.Library.setup_time;
      List.iter2
        (fun (a : Library.arc) (b : Library.arc) ->
          Alcotest.(check string) "pins" a.Library.from_pin b.Library.from_pin;
          List.iter
            (fun (slew, load) ->
              Alcotest.(check (float 1e-16)) "delay preserved"
                (Library.delay_of a ~dir:Library.Rise ~slew ~load)
                (Library.delay_of b ~dir:Library.Rise ~slew ~load))
            [ (1e-11, 1e-15); (2e-10, 8e-15); (9e-10, 1.9e-14) ])
        e.Library.arcs r.Library.arcs)
    (Library.entries lib)

let test_io_parse_errors () =
  (try
     ignore (Io.of_string "library x\nbogus\n");
     Alcotest.fail "expected failure"
   with Failure msg ->
     Alcotest.(check bool) "line number in error" true
       (String.length msg > 0 && String.contains msg ':'));
  try
    ignore (Io.of_string "library x\nslews 1e-11 2e-11\nloads 1e-15 2e-15\ncell A UNKNOWN_CELL 0 0 0\n");
    Alcotest.fail "expected failure"
  with Failure msg ->
    Alcotest.(check bool) "unknown cell reported" true
      (String.length msg > 0)

(* ------------------------------------------------------------------ *)
(* Fault tolerance: typed errors, retry/escalation, graceful fallback  *)
(* ------------------------------------------------------------------ *)

let fault_cells () =
  List.map Catalog.find_exn
    [ "INV_X1"; "NAND2_X1"; "NOR2_X1"; "XOR2_X1"; "DFF_X1" ]

let faulty_build ~depth =
  let fault = { Characterize.rate = 0.10; seed = 42; depth } in
  let backend = Characterize.Faulty (fault, Characterize.default_backend) in
  Characterize.library_report ~backend ~cells:(fault_cells ()) ~axes:Axes.coarse
    ~name:"faulty" ~scenario:(Scenario.scenario Scenario.worst_case) ()

let check_complete_library lib =
  List.iter
    (fun (e : Library.entry) ->
      Alcotest.(check bool) ("arcs present for " ^ e.Library.indexed_name) true
        (e.Library.arcs <> [] || e.Library.cell.Cell.inputs = []);
      List.iter
        (fun (a : Library.arc) ->
          List.iter
            (fun t ->
              Alcotest.(check bool) "full finite grid" true
                (Nldm.fold (fun acc v -> acc && Float.is_finite v) true t))
            [ a.Library.delay_rise; a.Library.delay_fall; a.Library.slew_rise;
              a.Library.slew_fall ])
        e.Library.arcs)
    (Library.entries lib)

let test_clean_build_report () =
  let lib, report =
    Characterize.library_report
      ~cells:[ Catalog.find_exn "INV_X1" ]
      ~axes:Axes.coarse ~name:"clean"
      ~scenario:(Scenario.scenario Scenario.fresh) ()
  in
  check_complete_library lib;
  Alcotest.(check bool) "clean" true (Characterize.report_clean report);
  let t = Characterize.report_totals report in
  (* One arc, two directions, 3x3 grid. *)
  Alcotest.(check int) "point count" 18 t.Characterize.points;
  Alcotest.(check int) "all clean" 18 t.Characterize.clean

let test_fault_injection_recovers () =
  (* depth = 1: every injected point fails its first attempt and must be
     recovered by the escalated re-run — never by a fallback. *)
  let lib, report = faulty_build ~depth:1 in
  check_complete_library lib;
  let t = Characterize.report_totals report in
  Alcotest.(check bool) "faults were injected" true (t.Characterize.recovered > 0);
  Alcotest.(check int) "no fallbacks needed" 0 t.Characterize.degraded;
  Alcotest.(check int) "no points lost" 0 t.Characterize.lost;
  Alcotest.(check int) "counters partition the grid" t.Characterize.points
    (t.Characterize.clean + t.Characterize.recovered + t.Characterize.degraded
    + t.Characterize.lost);
  Alcotest.(check bool) "report prints the failing arcs" true
    (String.length (Characterize.report_to_string report) > 0)

let test_fault_injection_fallback () =
  (* Unbounded depth: injected points fail the whole escalation ladder and
     must be repaired by neighbour interpolation / the analytic model, so
     the library is still complete. *)
  let lib, report = faulty_build ~depth:max_int in
  check_complete_library lib;
  let t = Characterize.report_totals report in
  Alcotest.(check int) "nothing recovered by retry" 0 t.Characterize.recovered;
  Alcotest.(check bool) "repairs happened" true (t.Characterize.degraded > 0);
  Alcotest.(check int) "no points lost" 0 t.Characterize.lost;
  (* The injected point set is a function of (rate, seed) only, so the
     depth=1 run must recover exactly the points this run repairs. *)
  let _, shallow = faulty_build ~depth:1 in
  Alcotest.(check int) "every injected fault accounted for"
    (Characterize.report_totals shallow).Characterize.recovered
    t.Characterize.degraded

let test_parallel_determinism () =
  (* The tentpole guarantee: [library ~jobs:n] is identical to
     [~jobs:1] — entries, tables, and the build report are assembled in
     input order, never completion order.  Mixed cell kinds (combinational
     and flip-flop) exercise both grid fan-out shapes. *)
  let cells =
    List.map Catalog.find_exn [ "INV_X1"; "NAND2_X1"; "DFF_X1" ]
  in
  let build jobs =
    Characterize.library_report ~cells ~jobs ~axes:Axes.coarse
      ~name:"determinism" ~scenario:(Scenario.scenario Scenario.worst_case) ()
  in
  let lib1, rep1 = build 1 in
  let lib4, rep4 = build 4 in
  Alcotest.(check (list string)) "same entry order"
    (Library.names lib1) (Library.names lib4);
  List.iter2
    (fun (a : Library.entry) (b : Library.entry) ->
      let name = a.Library.indexed_name in
      Alcotest.(check string) "entry name" name b.Library.indexed_name;
      Alcotest.(check (float 0.)) (name ^ ": setup") a.Library.setup_time
        b.Library.setup_time;
      Alcotest.(check bool) (name ^ ": pin caps") true
        (a.Library.pin_caps = b.Library.pin_caps);
      (* Arc records are plain data (tables are float arrays), so
         structural equality is exact table-for-table identity. *)
      Alcotest.(check bool) (name ^ ": identical arcs") true
        (a.Library.arcs = b.Library.arcs))
    (Library.entries lib1) (Library.entries lib4);
  (* Wall-time fields (sim_seconds / grid_seconds) are measurements, not
     results — everything else in the accounting must be bit-identical. *)
  let project (s : Characterize.arc_stats) =
    ( (s.Characterize.stat_cell, s.Characterize.stat_from,
       s.Characterize.stat_to, s.Characterize.stat_dir),
      (s.Characterize.measured, s.Characterize.retried,
       s.Characterize.repaired, s.Characterize.failed,
       s.Characterize.predicted),
      (s.Characterize.repairs, s.Characterize.errors, s.Characterize.prov) )
  in
  Alcotest.(check bool) "identical reports, same stats order" true
    (List.map project rep1.Characterize.stats
    = List.map project rep4.Characterize.stats)

let test_descriptive_lookup_errors () =
  let lib = Lazy.force Fixtures.fresh_library in
  Alcotest.check_raises "missing cell"
    (Library.Cell_not_found { library = "test-fresh"; cell = "NAND9_X1" })
    (fun () -> ignore (Library.find_exn lib "NAND9_X1"));
  let e = fresh_entry "INV_X1" in
  Alcotest.check_raises "missing pin"
    (Library.Pin_not_found { cell = "INV_X1"; pin = "Z" })
    (fun () -> ignore (Library.input_cap e "Z"))

let test_analytic_backend_runs () =
  let scenario = Scenario.scenario Scenario.worst_case in
  let cell = Catalog.find_exn "INV_X1" in
  let arc = List.hd (Cell.arcs cell) in
  let d, s =
    Characterize.arc_measure Characterize.Analytic ~scenario ~cell ~arc
      ~dir:Library.Rise ~slew:4e-11 ~load:2e-15
  in
  Alcotest.(check bool) "positive" true (d > 0. && s > 0.)

let test_warm_vs_cold_agreement () =
  (* Grid characterization warm-starts every transient from the previous
     point's settled operating point; [arc_measure] settles cold from zero.
     Warm seeding only accelerates the settle — it must not move the
     measured numbers.  Compare every coarse-grid point of the aged
     inverter, both directions, against a cold re-measurement. *)
  let scenario = Scenario.scenario Scenario.worst_case in
  let cell = Catalog.find_exn "INV_X1" in
  let cell_arc = List.hd (Cell.arcs cell) in
  let arc = List.hd (aged_entry "INV_X1").Library.arcs in
  List.iter
    (fun dir ->
      Array.iter
        (fun slew ->
          Array.iter
            (fun load ->
              let d_cold, s_cold =
                Characterize.arc_measure Characterize.default_backend ~scenario
                  ~cell ~arc:cell_arc ~dir ~slew ~load
              in
              let d_warm = Library.delay_of arc ~dir ~slew ~load in
              let s_warm = Library.out_slew_of arc ~dir ~slew ~load in
              Fixtures.check_close ~tol:(0.01 *. d_cold) "warm vs cold delay"
                d_cold d_warm;
              Fixtures.check_close ~tol:(0.01 *. s_cold) "warm vs cold slew"
                s_cold s_warm)
            Axes.coarse.Axes.loads)
        Axes.coarse.Axes.slews)
    [ Library.Rise; Library.Fall ]

let prop_lookup_within_table_bounds =
  let lib = Fixtures.fresh_library in
  Fixtures.qtest "interpolated delay within table bounds"
    QCheck2.Gen.(pair (float_range 5e-12 9.47e-10) (float_range 5e-16 2e-14))
    (fun (slew, load) ->
      let e = Library.find_exn (Lazy.force lib) "NAND2_X1" in
      let arc = List.hd e.Library.arcs in
      let d = Library.delay_of arc ~dir:Library.Fall ~slew ~load in
      d >= Nldm.min_value arc.Library.delay_fall -. 1e-12
      && d <= Nldm.max_value arc.Library.delay_fall +. 1e-12)

(* Bottom rung of the surrogate fallback ladder: a non-positive tolerance
   trusts no prediction, so the build must walk the exact same sweep (same
   warm-start chain, same visit order) as a non-surrogate build and produce
   bit-identical tables, with every point accounted as a fallback. *)
let test_surrogate_tol_zero_bit_identity () =
  let cells = List.map Catalog.find_exn [ "INV_X1"; "NAND2_X1" ] in
  let scenario = Scenario.scenario Scenario.worst_case in
  let plain, plain_rep =
    Characterize.library_report ~cells ~axes:Axes.coarse ~name:"sur-off"
      ~scenario ()
  in
  let lib, rep =
    Characterize.library_report ~cells ~axes:Axes.coarse
      ~surrogate:(Characterize.surrogate ~tol:0. ())
      ~name:"sur-off" ~scenario ()
  in
  List.iter2
    (fun (a : Library.entry) (b : Library.entry) ->
      Alcotest.(check bool)
        (a.Library.indexed_name ^ ": bit-identical arcs")
        true
        (a.Library.arcs = b.Library.arcs))
    (Library.entries plain) (Library.entries lib);
  let points = (Characterize.report_totals plain_rep).Characterize.points in
  match Characterize.report_surrogate rep with
  | None -> Alcotest.fail "expected surrogate accounting"
  | Some st ->
    Alcotest.(check int) "no seed simulations" 0 st.Characterize.fit_simulated;
    Alcotest.(check int) "no predictions" 0 st.Characterize.fit_predicted;
    Alcotest.(check int) "every point fell back" points
      st.Characterize.fit_fallback

(* Upper rung: against a primed cross-corner pool the model must actually
   serve points — and the tables it serves must still look like NLDM
   tables (finite, positive, delay monotone in load).  This goes through
   {!Degradation_library} because the pool (full anchor-corner builds
   harvested into per-model training buckets) is what makes percent-level
   confidence reachable; a pool-less single-corner fit honestly reports
   its uncertainty and falls back instead.  The cell is XOR2 — a
   multi-stage cell whose hundreds-of-ps tables sit far above the
   simulator's noise floor; single-stage cells like INV are *refused* by
   the replayed-anchor certificate at percent tolerances because their
   5-50 ps delays put chain noise at the same scale as the tolerance
   (that honest refusal is the all-fallback rung above). *)
let surrogate_axes =
  let geo n lo hi =
    Array.init n (fun i -> lo *. ((hi /. lo) ** (float i /. float (n - 1))))
  in
  {
    Axes.slews = geo 5 Axes.slew_min Axes.slew_max;
    loads = geo 5 Axes.load_min Axes.load_max;
  }

let test_surrogate_predicts_with_loose_tol () =
  let cells = [ Catalog.find_exn "XOR2_X1" ] in
  let deglib =
    Degradation_library.create ~cells ~axes:surrogate_axes
      ~surrogate:(Characterize.surrogate ~tol:0.05 ())
      ()
  in
  let lib =
    Degradation_library.corner deglib
      (Scenario.corner ~lambda_p:0.6 ~lambda_n:0.6)
  in
  let rep =
    match
      List.filter
        (fun (_, r) ->
          List.exists
            (fun (s : Characterize.arc_stats) ->
              s.Characterize.prov <> None)
            r.Characterize.stats)
        (Degradation_library.build_reports deglib)
    with
    | [ (_, r) ] -> r
    | l ->
      Alcotest.failf "expected exactly one surrogate build report, got %d"
        (List.length l)
  in
  let totals = Characterize.report_totals rep in
  (match Characterize.report_surrogate rep with
  | None -> Alcotest.fail "expected surrogate accounting"
  | Some st ->
    Alcotest.(check bool) "some points predicted" true
      (st.Characterize.fit_predicted > 0);
    Alcotest.(check int) "provenance partitions the grid"
      totals.Characterize.points
      (st.Characterize.fit_simulated + st.Characterize.fit_predicted
      + st.Characterize.fit_fallback));
  let e = Library.find_exn lib "XOR2_X1" in
  let arc = List.hd e.Library.arcs in
  Array.iter
    (fun slew ->
      let prev = ref 0. in
      Array.iter
        (fun load ->
          List.iter
            (fun dir ->
              let d = Library.delay_of arc ~dir ~slew ~load in
              let s = Library.out_slew_of arc ~dir ~slew ~load in
              Alcotest.(check bool) "delay finite and positive" true
                (Float.is_finite d && d > 0.);
              Alcotest.(check bool) "slew finite and positive" true
                (Float.is_finite s && s > 0.))
            [ Library.Rise; Library.Fall ];
          let d = Library.delay_of arc ~dir:Library.Rise ~slew ~load in
          Alcotest.(check bool) "delay monotone in load" true (d >= !prev);
          prev := d)
        surrogate_axes.Axes.loads)
    surrogate_axes.Axes.slews

let suite =
  [
    ("nldm: validation", `Quick, test_nldm_make_validation);
    ("nldm: lookup", `Quick, test_nldm_lookup);
    ("nldm: map/fold", `Quick, test_nldm_map_fold);
    ("axes: paper grids", `Quick, test_axes);
    ("characterize: inverter", `Quick, test_characterized_inverter);
    ("characterize: delay monotone in load", `Quick, test_delay_monotone_in_load);
    ("characterize: aging slows rise arcs", `Quick, test_aging_slows_rise);
    ("characterize: NOR fall improves at large slew", `Quick, test_nor_fall_improves_at_large_slew);
    ("characterize: flip-flop entry", `Quick, test_flipflop_entry);
    ("library: out direction", `Quick, test_out_direction);
    ("merge: indexed names", `Quick, test_merge_indexed_names);
    ("merge: mini complete library", `Quick, test_merge_complete);
    ("library: duplicate rejected", `Quick, test_library_duplicate_rejected);
    ("io: save/load roundtrip", `Quick, test_io_roundtrip);
    ("io: parse errors", `Quick, test_io_parse_errors);
    ("characterize: analytic backend", `Quick, test_analytic_backend_runs);
    ("characterize: warm start agrees with cold", `Quick, test_warm_vs_cold_agreement);
    ("characterize: clean build report", `Quick, test_clean_build_report);
    ("characterize: injected faults recovered by retry", `Quick, test_fault_injection_recovers);
    ("characterize: exhausted faults repaired by fallback", `Quick, test_fault_injection_fallback);
    ("characterize: parallel build deterministic", `Slow, test_parallel_determinism);
    ("characterize: surrogate tol=0 bit-identical", `Quick,
     test_surrogate_tol_zero_bit_identity);
    ("characterize: surrogate serves points at loose tol", `Quick,
     test_surrogate_predicts_with_loose_tol);
    ("library: descriptive lookup errors", `Quick, test_descriptive_lookup_errors);
  ]

let props = [ prop_lookup_within_table_bounds ]
