(* Telemetry library: metrics registry, JSON, spans, and agreement between
   the process-global counters and the characterization report of PR 1. *)

module Metrics = Aging_obs.Metrics
module Span = Aging_obs.Span
module Log = Aging_obs.Log
module Json = Aging_obs.Json
module Run_ledger = Aging_obs.Run_ledger
module Trace_export = Aging_obs.Trace_export
module Flightrec = Aging_obs.Flightrec
module Profile = Aging_obs.Profile
module Scenario = Aging_physics.Scenario
module Axes = Aging_liberty.Axes
module Characterize = Aging_liberty.Characterize
module Catalog = Aging_cells.Catalog

(* ------------------------------ metrics ------------------------------ *)

let test_counter () =
  let c = Metrics.counter "test.obs.counter" in
  let c' = Metrics.counter "test.obs.counter" in
  Metrics.incr c;
  Metrics.incr ~by:4 c';
  Alcotest.(check int) "get-or-create shares storage" 5 (Metrics.value c);
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes in place" 0 (Metrics.value c);
  Metrics.incr c;
  Alcotest.(check int) "handle survives reset" 1 (Metrics.value c')

let test_kind_mismatch () =
  ignore (Metrics.counter "test.obs.kind");
  (try
     ignore (Metrics.gauge "test.obs.kind");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  try
    ignore (Metrics.histogram "test.obs.kind");
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_gauge () =
  let g = Metrics.gauge "test.obs.gauge" in
  Metrics.set g 2.5;
  Metrics.set g 42.;
  Alcotest.(check (float 0.)) "last write wins" 42. (Metrics.gauge_value g)

let test_histogram () =
  let h = Metrics.histogram ~bounds:[| 1.; 10.; 100. |] "test.obs.hist" in
  List.iter (Metrics.observe h) [ 0.5; 5.; 5.; 50.; 5000. ];
  Alcotest.(check int) "count" 5 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 5060.5 (Metrics.histogram_sum h);
  Alcotest.(check (list (pair (float 0.) int)))
    "per-bucket counts with overflow"
    [ (1., 1); (10., 2); (100., 1); (infinity, 1) ]
    (Metrics.bucket_counts h);
  Alcotest.check_raises "non-ascending bounds"
    (Invalid_argument
       "Aging_obs.Metrics: histogram test.obs.hist.bad bounds not ascending")
    (fun () ->
      ignore (Metrics.histogram ~bounds:[| 2.; 1. |] "test.obs.hist.bad"))

let test_metrics_json () =
  let c = Metrics.counter "test.obs.json.counter" in
  Metrics.incr ~by:7 c;
  let h = Metrics.histogram ~bounds:[| 1. |] "test.obs.json.hist" in
  Metrics.observe h 0.5;
  Metrics.observe h 2.;
  (* The export must survive a round trip through its own parser and keep
     counter integers exact. *)
  let doc = Json.of_string (Json.to_string ~pretty:true (Metrics.to_json ())) in
  (match Json.member "test.obs.json.counter" doc with
  | Some entry ->
    Alcotest.(check (option string)) "type tag" (Some "counter")
      (match Json.member "type" entry with
      | Some (Json.String s) -> Some s
      | _ -> None);
    Alcotest.(check bool) "exact integer value" true
      (Json.member "value" entry = Some (Json.Int 7))
  | None -> Alcotest.fail "counter missing from JSON export");
  match Json.member "test.obs.json.hist" doc with
  | Some entry ->
    Alcotest.(check bool) "histogram count" true
      (Json.member "count" entry = Some (Json.Int 2));
    (* the overflow bucket bound serializes as the string "+Inf" *)
    let buckets =
      match Json.member "buckets" entry with Some (Json.List l) -> l | _ -> []
    in
    Alcotest.(check bool) "overflow bound is \"+Inf\"" true
      (List.exists
         (fun b -> Json.member "le" b = Some (Json.String "+Inf"))
         buckets)
  | None -> Alcotest.fail "histogram missing from JSON export"

(* ------------------------------- json ------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
        ("int", Json.Int (-42));
        ("big", Json.Int max_int);
        ("float", Json.Float 1.6180339887498949);
        ("tiny", Json.Float 4.9302499294281006e-11);
        ("str", Json.String "a\"b\\c\n\t\x01é");
        ("empty_obj", Json.Obj []);
        ("empty_list", Json.List []);
      ]
  in
  Alcotest.(check bool) "compact round trip" true
    (Json.of_string (Json.to_string v) = v);
  Alcotest.(check bool) "pretty round trip" true
    (Json.of_string (Json.to_string ~pretty:true v) = v)

let test_json_parse () =
  Alcotest.(check bool) "escapes" true
    (Json.of_string {|"a\u00e9\u0041\n"|} = Json.String "aéA\n");
  Alcotest.(check bool) "number classes" true
    (Json.of_string "[1, 1.0, 1e2]"
    = Json.List [ Json.Int 1; Json.Float 1.; Json.Float 100. ]);
  let bad s =
    try
      ignore (Json.of_string s);
      Alcotest.failf "accepted malformed %S" s
    with Json.Parse_error _ -> ()
  in
  List.iter bad [ ""; "{"; "[1,]"; "{\"a\":1} x"; "nul"; "\"\\q\"" ]

(* ------------------------------- spans ------------------------------- *)

let test_span_nesting () =
  Span.reset ();
  Span.set_recording true;
  let r =
    Span.with_ "test.outer" ~attrs:[ ("k", "v") ] (fun () ->
        Span.with_ "test.inner" (fun () -> ());
        Span.with_ "test.inner" (fun () -> ());
        17)
  in
  Span.set_recording false;
  Alcotest.(check int) "with_ returns the result" 17 r;
  match Span.roots () with
  | [ outer ] ->
    Alcotest.(check string) "root name" "test.outer" outer.Span.name;
    Alcotest.(check (list (pair string string))) "attrs" [ ("k", "v") ]
      outer.Span.attrs;
    Alcotest.(check int) "two children" 2 (List.length outer.Span.children);
    Alcotest.(check bool) "outcome completed" true
      (outer.Span.outcome = Span.Completed);
    List.iter
      (fun (c : Span.t) ->
        Alcotest.(check string) "child name" "test.inner" c.Span.name;
        Alcotest.(check bool) "child within parent" true
          (c.Span.duration <= outer.Span.duration +. 1e-9))
      outer.Span.children
  | roots -> Alcotest.failf "expected 1 root, got %d" (List.length roots)

let test_span_exception_safety () =
  Span.reset ();
  Span.set_recording true;
  Metrics.reset ();
  (try
     Span.with_ "test.boom" (fun () ->
         Span.with_ "test.boom.inner" (fun () -> failwith "kaboom"))
   with Failure _ -> ());
  (* The stack unwound cleanly: a later span is a new root, not a child of
     the raised one. *)
  Span.with_ "test.after" (fun () -> ());
  Span.set_recording false;
  (match Span.roots () with
  | [ boom; after ] ->
    Alcotest.(check string) "raised root" "test.boom" boom.Span.name;
    Alcotest.(check bool) "outcome raised" true
      (match boom.Span.outcome with
      | Span.Raised msg -> String.length msg > 0
      | Span.Completed -> false);
    Alcotest.(check int) "raised child recorded" 1
      (List.length boom.Span.children);
    Alcotest.(check string) "next span is a fresh root" "test.after"
      after.Span.name
  | roots -> Alcotest.failf "expected 2 roots, got %d" (List.length roots));
  Alcotest.(check int) "error counter bumped" 1
    (Metrics.value (Metrics.counter "span.test.boom.errors"))

let test_span_histogram_without_recording () =
  Span.reset ();
  Metrics.reset ();
  Alcotest.(check bool) "recording off" false (Span.recording ());
  Span.with_ "test.cheap" (fun () -> ());
  Span.with_ "test.cheap" (fun () -> ());
  Alcotest.(check (list (pair string string))) "no tree recorded" []
    (List.map (fun (s : Span.t) -> (s.Span.name, "")) (Span.roots ()));
  Alcotest.(check int) "duration histogram still fed" 2
    (Metrics.histogram_count (Metrics.histogram "span.test.cheap"))

(* ---------------------- log levels and warnings ---------------------- *)

let test_log_levels () =
  let saved = Log.level () in
  Fun.protect ~finally:(fun () -> Log.set_level saved) @@ fun () ->
  Metrics.reset ();
  Log.set_level Log.Quiet;
  Log.warnf "test" "suppressed %d" 1;
  Alcotest.(check int) "quiet still counts warnings" 1
    (Metrics.value (Metrics.counter "log.warnings"));
  Alcotest.(check (option string)) "level names parse"
    (Some "debug")
    (match Log.level_of_string "debug" with
    | Some Log.Debug -> Some "debug"
    | _ -> None);
  Alcotest.(check bool) "unknown level rejected" true
    (Log.level_of_string "loud" = None);
  Log.set_level Log.Warn;
  Alcotest.(check bool) "warn enabled at Warn" true (Log.enabled Log.Warn);
  Alcotest.(check bool) "info disabled at Warn" false (Log.enabled Log.Info)

(* ----------- counters agree with the characterization report ---------- *)

let totals_vs_counters ?(jobs = 1) ?(cells = [ "INV_X1" ]) ~backend ~scenario
    () =
  Metrics.reset ();
  let _lib, report =
    Characterize.library_report ~backend ~jobs
      ~cells:(List.map Catalog.find_exn cells)
      ~axes:Axes.coarse ~name:"obs" ~scenario ()
  in
  let t = Characterize.report_totals report in
  let v name = Metrics.value (Metrics.counter name) in
  Alcotest.(check int) "measured = clean" t.Characterize.clean
    (v "characterize.points.measured");
  Alcotest.(check int) "retried = recovered" t.Characterize.recovered
    (v "characterize.points.retried");
  Alcotest.(check int) "repaired = degraded" t.Characterize.degraded
    (v "characterize.points.repaired");
  Alcotest.(check int) "failed = lost" t.Characterize.lost
    (v "characterize.points.failed");
  Alcotest.(check int) "cell count" (List.length cells)
    (v "characterize.cells");
  t

let test_build_metrics_clean () =
  let t =
    totals_vs_counters ~backend:Characterize.default_backend
      ~scenario:(Scenario.scenario Scenario.fresh) ()
  in
  Alcotest.(check bool) "grid measured" true (t.Characterize.points > 0);
  let v name = Metrics.value (Metrics.counter name) in
  Alcotest.(check bool) "engine ran transients" true (v "engine.transients" > 0);
  Alcotest.(check bool) "engine stepped" true
    (v "engine.steps" > v "engine.transients");
  Alcotest.(check bool) "newton iterated" true
    (v "engine.newton_iterations" >= v "engine.steps")

let test_build_metrics_faulty () =
  let fault = { Characterize.rate = 1.0; seed = 7; depth = 1 } in
  let t =
    totals_vs_counters
      ~backend:(Characterize.Faulty (fault, Characterize.default_backend))
      ~scenario:(Scenario.scenario Scenario.worst_case) ()
  in
  Alcotest.(check bool) "every point needed a retry" true
    (t.Characterize.recovered > 0)

let test_build_metrics_parallel () =
  (* Counters are bumped from worker domains during a parallel build; the
     registry's atomics must not lose increments, so the counters still
     agree exactly with the (deterministically merged) report. *)
  let t =
    totals_vs_counters ~jobs:4
      ~cells:[ "INV_X1"; "NAND2_X1"; "NOR2_X1" ]
      ~backend:Characterize.default_backend
      ~scenario:(Scenario.scenario Scenario.worst_case) ()
  in
  Alcotest.(check bool) "grid measured" true (t.Characterize.points > 0);
  Alcotest.(check int) "counters partition the grid" t.Characterize.points
    (t.Characterize.clean + t.Characterize.recovered + t.Characterize.degraded
    + t.Characterize.lost)

(* ---------------------------- percentiles ---------------------------- *)

let test_percentiles () =
  (* 100 observations spread as 50 / 30 / 20 across three buckets. *)
  let buckets = [ (10., 50); (100., 30); (1000., 20); (infinity, 0) ] in
  let p q = Metrics.percentile_of_buckets buckets q in
  (* Geometric interpolation: p50 lands exactly on the first bucket's upper
     bound; the p80 boundary lands on 100. *)
  Alcotest.(check (float 1e-9)) "p50 at bucket edge" 10. (p 0.5);
  Alcotest.(check (float 1e-9)) "p80 at bucket edge" 100. (p 0.8);
  Alcotest.(check (float 1e-9)) "p100 = last finite bound" 1000. (p 1.0);
  (* Within the second bucket (log-spaced 10..100), the 65th percentile is
     halfway through in rank, i.e. sqrt(10*100) in log space. *)
  Alcotest.(check (float 1e-6)) "geometric within bucket"
    (sqrt (10. *. 100.)) (p 0.65);
  (* First bucket interpolates linearly from 0. *)
  Alcotest.(check (float 1e-9)) "first bucket linear" 5. (p 0.25);
  Alcotest.(check bool) "q clamps" true (p (-1.) = p 0. && p 2. = p 1.);
  (* Overflow observations report the last finite bound, not infinity. *)
  Alcotest.(check (float 1e-9)) "overflow clamped"
    10.
    (Metrics.percentile_of_buckets [ (10., 1); (infinity, 9) ] 0.99);
  Alcotest.(check bool) "empty is nan" true
    (Float.is_nan (Metrics.percentile_of_buckets [ (10., 0) ] 0.5))

let test_approx_percentile () =
  let h = Metrics.histogram ~bounds:[| 1.; 10.; 100. |] "test.obs.pctl" in
  List.iter (Metrics.observe h) [ 5.; 5.; 5.; 5. ];
  let p50 = Metrics.approx_percentile h 0.5 in
  (* All mass in (1,10]: any quantile interpolates inside that bucket. *)
  Alcotest.(check bool) "p50 within the populated bucket" true
    (p50 > 1. && p50 <= 10.);
  Alcotest.(check bool) "monotone in q" true
    (Metrics.approx_percentile h 0.95 >= p50)

let test_buckets_of_json () =
  Metrics.reset ();
  let h = Metrics.histogram ~bounds:[| 1.; 10. |] "test.obs.bjson" in
  List.iter (Metrics.observe h) [ 0.5; 3.; 30. ];
  let doc = Json.of_string (Json.to_string (Metrics.to_json ())) in
  let entry = Option.get (Json.member "test.obs.bjson" doc) in
  match Metrics.buckets_of_json entry with
  | None -> Alcotest.fail "buckets_of_json rejected its own export"
  | Some buckets ->
    Alcotest.(check (list (pair (float 0.) int)))
      "buckets survive the JSON round trip"
      [ (1., 1); (10., 1); (infinity, 1) ]
      buckets;
    Alcotest.(check (float 1e-9)) "same percentile before and after"
      (Metrics.approx_percentile h 0.5)
      (Metrics.percentile_of_buckets buckets 0.5)

(* ----------------------- non-finite float JSON ----------------------- *)

let test_nonfinite_floats () =
  Alcotest.(check bool) "finite is a number" true
    (Json.of_float 2.5 = Json.Float 2.5);
  Alcotest.(check bool) "nan is deterministic" true
    (Json.of_float Float.nan = Json.String "NaN");
  Alcotest.(check bool) "+inf" true
    (Json.of_float infinity = Json.String "Infinity");
  Alcotest.(check bool) "-inf" true
    (Json.of_float neg_infinity = Json.String "-Infinity");
  (* Round trip through the printer/parser: the encoded forms are plain
     strings, so to_string must accept them where a bare Float nan would
     raise. *)
  let encoded =
    Json.to_string
      (Json.List (List.map Json.of_float [ 1.5; Float.nan; infinity ]))
  in
  (match Json.of_string encoded with
  | Json.List [ a; b; c ] ->
    Alcotest.(check (option (float 0.))) "finite back" (Some 1.5)
      (Json.to_float a);
    Alcotest.(check bool) "nan back" true
      (match Json.to_float b with Some f -> Float.is_nan f | None -> false);
    Alcotest.(check (option (float 0.))) "inf back" (Some infinity)
      (Json.to_float c)
  | _ -> Alcotest.fail "list shape lost");
  (* Ints read back as floats too (JSON numbers are one class). *)
  Alcotest.(check (option (float 0.))) "int promotes" (Some 3.)
    (Json.to_float (Json.Int 3))

(* --------------------------- span of_json --------------------------- *)

let test_span_json_roundtrip () =
  Span.reset ();
  Span.set_recording true;
  (try
     Span.with_ "test.rt.outer" ~attrs:[ ("unicode", "é\n\"") ] (fun () ->
         Span.with_ "test.rt.inner" (fun () -> ());
         failwith "boom")
   with Failure _ -> ());
  Span.set_recording false;
  let roots = Span.roots () in
  let rec strip (s : Span.t) =
    (* of_json can't reproduce float noise below the printer's precision,
       but Json.to_string prints round-trippable doubles, so equality is
       exact. *)
    {
      s with
      Span.children = List.map strip s.Span.children;
    }
  in
  List.iter
    (fun (s : Span.t) ->
      let json = Json.of_string (Json.to_string (Span.span_to_json s)) in
      match Span.of_json json with
      | Ok s' -> Alcotest.(check bool) "span round trip" true (strip s = s')
      | Error e -> Alcotest.failf "span of_json failed: %s" e)
    roots;
  Alcotest.(check bool) "bad span json is an Error" true
    (match Span.of_json (Json.Obj [ ("name", Json.Int 3) ]) with
    | Error _ -> true
    | Ok _ -> false)

(* ------------------------------ ledger ------------------------------ *)

let with_tmp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ledger-test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command ("rm -rf " ^ Filename.quote dir)))
    (fun () -> f dir)

let test_ledger_roundtrip () =
  with_tmp_dir @@ fun dir ->
  Metrics.reset ();
  Span.reset ();
  Span.set_recording true;
  Span.with_ "test.ledger.work" (fun () -> ());
  Span.set_recording false;
  Run_ledger.note_qor "guardband_ps" 62.5;
  Run_ledger.note_qor "nan_qor" Float.nan;
  Run_ledger.note "jobs" (Json.Int 4);
  let r =
    Run_ledger.capture ~tool:"test" ~subcommand:"roundtrip"
      ~argv:[ "test"; "É=\"quoted\"" ] ~outcome:(Run_ledger.Failed "why")
      ~started_at:1754000000.25 ~wall_s:1.5 ()
  in
  Alcotest.(check int) "id length" 12 (String.length r.Run_ledger.id);
  Alcotest.(check bool) "qor drained" true
    (List.assoc_opt "guardband_ps" r.Run_ledger.qor = Some 62.5);
  Alcotest.(check bool) "spans captured" true
    (List.exists
       (fun (s : Span.t) -> s.Span.name = "test.ledger.work")
       r.Run_ledger.spans);
  (* A second capture starts from drained accumulators. *)
  let r2 =
    Run_ledger.capture ~tool:"test" ~subcommand:"next" ~started_at:0.
      ~wall_s:0. ()
  in
  Alcotest.(check (list (pair string (float 0.)))) "accumulators drain" []
    r2.Run_ledger.qor;
  Alcotest.(check bool) "fresh id per capture" true
    (r.Run_ledger.id <> r2.Run_ledger.id);
  ignore (Run_ledger.append ~dir r);
  ignore (Run_ledger.append ~dir r2);
  match Run_ledger.load ~dir with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok [ a; b ] ->
    Alcotest.(check string) "order preserved" r.Run_ledger.id a.Run_ledger.id;
    Alcotest.(check string) "second record" r2.Run_ledger.id b.Run_ledger.id;
    Alcotest.(check bool) "outcome survives" true
      (a.Run_ledger.outcome = Run_ledger.Failed "why");
    Alcotest.(check bool) "argv survives escaping" true
      (a.Run_ledger.argv = [ "test"; "É=\"quoted\"" ]);
    Alcotest.(check bool) "NaN QoR survives deterministically" true
      (match List.assoc_opt "nan_qor" a.Run_ledger.qor with
      | Some f -> Float.is_nan f
      | None -> false);
    Alcotest.(check bool) "notes survive" true
      (List.assoc_opt "jobs" a.Run_ledger.notes = Some (Json.Int 4));
    Alcotest.(check bool) "spans survive" true
      (List.length a.Run_ledger.spans = List.length r.Run_ledger.spans)
  | Ok l -> Alcotest.failf "expected 2 records, got %d" (List.length l)

let test_ledger_select () =
  with_tmp_dir @@ fun dir ->
  let mk i =
    Run_ledger.capture ~tool:"test" ~subcommand:(string_of_int i)
      ~started_at:(float_of_int i) ~wall_s:0. ()
  in
  let records = List.map mk [ 0; 1; 2 ] in
  List.iter (fun r -> ignore (Run_ledger.append ~dir r)) records;
  let loaded = Result.get_ok (Run_ledger.load ~dir) in
  let id_of sel =
    match Run_ledger.select loaded sel with
    | Ok r -> r.Run_ledger.id
    | Error e -> Alcotest.failf "select %s failed: %s" sel e
  in
  let nth n = (List.nth records n).Run_ledger.id in
  Alcotest.(check string) "index 0" (nth 0) (id_of "0");
  Alcotest.(check string) "index -1" (nth 2) (id_of "-1");
  Alcotest.(check string) "index -3" (nth 0) (id_of "-3");
  Alcotest.(check string) "id prefix"
    (nth 1)
    (id_of (String.sub (nth 1) 0 6));
  (* A positive out-of-range index like "7" may still resolve: ids are
     random hex, so "7" is a valid id prefix whenever an id happens to
     start with it (a real 1-in-6 flake).  A negative out-of-range index
     can never alias an id prefix — ids contain no '-'. *)
  Alcotest.(check bool) "out of range is an error" true
    (Result.is_error (Run_ledger.select loaded "-7"));
  Alcotest.(check bool) "unknown prefix is an error" true
    (Result.is_error (Run_ledger.select loaded "zzzz"));
  (* Ids are random hex, so a prefix can be purely numeric; out of range
     as an index, it must still resolve as an id prefix. *)
  let numeric = { (List.nth loaded 1) with Run_ledger.id = "914236abcdef" } in
  (match Run_ledger.select [ List.nth loaded 0; numeric ] "914236" with
  | Ok r ->
    Alcotest.(check string) "numeric prefix falls back" "914236abcdef"
      r.Run_ledger.id
  | Error e -> Alcotest.failf "numeric prefix failed: %s" e)

let test_ledger_corrupt_lines () =
  with_tmp_dir @@ fun dir ->
  let r =
    Run_ledger.capture ~tool:"test" ~subcommand:"keep" ~started_at:0.
      ~wall_s:0. ()
  in
  ignore (Run_ledger.append ~dir r);
  (* Simulate a torn concurrent append and unrelated garbage. *)
  let oc =
    open_out_gen [ Open_append ] 0o644 (Run_ledger.path ~dir)
  in
  output_string oc "this is not json\n{\"version\":";
  close_out oc;
  (match Run_ledger.load ~dir with
  | Ok [ only ] ->
    Alcotest.(check string) "good record kept" r.Run_ledger.id
      only.Run_ledger.id
  | Ok l -> Alcotest.failf "expected 1 record, got %d" (List.length l)
  | Error e -> Alcotest.failf "load failed: %s" e);
  (* A record from a newer schema is skipped, not fatal. *)
  let newer =
    Json.to_string
      (Json.Obj [ ("version", Json.Int (Run_ledger.schema_version + 1)) ])
  in
  let oc = open_out_gen [ Open_append ] 0o644 (Run_ledger.path ~dir) in
  output_string oc ("\n" ^ newer ^ "\n");
  close_out oc;
  match Run_ledger.load ~dir with
  | Ok l -> Alcotest.(check int) "newer-schema line skipped" 1 (List.length l)
  | Error e -> Alcotest.failf "load failed: %s" e

let test_ledger_concurrent_appends () =
  with_tmp_dir @@ fun dir ->
  (* Four domains race 8 appends each; O_APPEND single-write atomicity must
     keep every line parseable. *)
  let worker d () =
    for i = 0 to 7 do
      let r =
        Run_ledger.capture ~tool:"test"
          ~subcommand:(Printf.sprintf "d%d-%d" d i)
          ~argv:[ "x" ] ~started_at:(float_of_int i) ~wall_s:0. ()
      in
      ignore (Run_ledger.append ~dir r)
    done
  in
  let domains = List.init 4 (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join domains;
  match Run_ledger.load ~dir with
  | Ok records ->
    Alcotest.(check int) "all 32 records parse" 32 (List.length records);
    let ids = List.map (fun r -> r.Run_ledger.id) records in
    Alcotest.(check int) "ids unique" 32
      (List.length (List.sort_uniq String.compare ids))
  | Error e -> Alcotest.failf "load failed: %s" e

(* ------------------------- trace and profile ------------------------- *)

let spans_of_parallel_build () =
  Span.reset ();
  Metrics.reset ();
  Span.set_recording true;
  let _lib =
    Characterize.library ~jobs:4
      ~cells:(List.map Catalog.find_exn [ "INV_X1"; "NAND2_X1"; "NOR2_X1" ])
      ~axes:Axes.coarse ~name:"trace"
      ~scenario:(Scenario.scenario Scenario.worst_case) ()
  in
  Span.set_recording false;
  Span.roots ()

let test_trace_export_parallel () =
  let roots = spans_of_parallel_build () in
  Alcotest.(check bool) "worker spans surface as extra roots" true
    (List.length roots > 1);
  let events =
    match Trace_export.to_json roots with
    | Json.List evs -> evs
    | _ -> Alcotest.fail "trace is not a JSON array"
  in
  Alcotest.(check bool) "one event per span" true
    (List.length events
    = List.fold_left
        (fun n root ->
          let rec count (s : Span.t) =
            1 + List.fold_left (fun a c -> a + count c) 0 s.Span.children
          in
          n + count root)
        0 roots);
  let field name ev = Option.get (Json.member name ev) in
  List.iter
    (fun ev ->
      Alcotest.(check bool) "complete event" true
        (field "ph" ev = Json.String "X");
      let non_negative v =
        match v with
        | Json.Float f -> Float.is_finite f && f >= 0.
        | Json.Int i -> i >= 0
        | _ -> false
      in
      Alcotest.(check bool) "ts is a finite non-negative number" true
        (non_negative (field "ts" ev));
      Alcotest.(check bool) "dur is a finite non-negative number" true
        (non_negative (field "dur" ev)))
    events;
  let tids =
    List.sort_uniq compare
      (List.map (fun ev -> field "tid" ev) events)
  in
  (* The main domain's library-level root overlaps its worker-domain cell
     roots in time, so lane assignment must use at least two tracks. *)
  Alcotest.(check bool) "concurrent roots get distinct tids" true
    (List.length tids >= 2);
  (* The serialized trace parses back — i.e. it is valid JSON on disk. *)
  Alcotest.(check bool) "serialized trace parses" true
    (match Json.of_string (Trace_export.to_string roots) with
    | Json.List _ -> true
    | _ -> false)

let test_profile_telescopes () =
  let roots = spans_of_parallel_build () in
  let rows = Profile.of_spans roots in
  let total_roots = Profile.total_roots roots in
  let total_self = Profile.total_self rows in
  (* Self times telescope: summed over every tree they reproduce the root
     durations exactly (the acceptance bound is 1%; the identity is
     float-exact up to accumulation order). *)
  Alcotest.(check bool) "self times sum to the root durations" true
    (Float.abs (total_self -. total_roots)
    <= 0.01 *. Float.max total_roots 1e-9);
  let find name =
    List.find (fun (r : Profile.row) -> r.Profile.name = name) rows
  in
  let point = find "characterize.point" in
  Alcotest.(check bool) "leaf spans: self = total" true
    (Float.abs (point.Profile.self_s -. point.Profile.total_s) < 1e-12);
  let table = Profile.to_table ~top:3 rows in
  Alcotest.(check bool) "table renders the hottest rows" true
    (String.length table > 0)

(* --------------------------- flight recorder --------------------------- *)

let test_flightrec_wrap () =
  let r = Flightrec.create ~capacity:8 () in
  for i = 0 to 19 do
    Flightrec.record r ~fields:[ ("i", Json.Int i) ] "test.tick"
  done;
  Alcotest.(check int) "recorded counts overwritten events" 20
    (Flightrec.recorded r);
  Alcotest.(check int) "overwritten = recorded - capacity" 12
    (Flightrec.overwritten r);
  let events = Flightrec.events r in
  Alcotest.(check int) "ring keeps exactly capacity" 8 (List.length events);
  Alcotest.(check (list int)) "survivors are the newest, oldest first"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.map (fun (ev : Flightrec.event) -> ev.Flightrec.seq) events);
  List.iter
    (fun (ev : Flightrec.event) ->
      Alcotest.(check bool) "payload tracks seq" true
        (List.assoc_opt "i" ev.Flightrec.fields
        = Some (Json.Int ev.Flightrec.seq)))
    events;
  Flightrec.clear r;
  Alcotest.(check int) "clear empties the ring" 0
    (List.length (Flightrec.events r));
  Alcotest.(check int) "clear resets the counters" 0 (Flightrec.recorded r)

(* Four domains hammer one ring concurrently: every surviving event must
   have a unique seq, and the survivors must be exactly the newest
   [capacity] seqs — the lock hands out dense sequence numbers and ring
   slots atomically. *)
let test_flightrec_concurrent () =
  let per_domain = 200 in
  let domains = 4 in
  let r = Flightrec.create ~capacity:64 () in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              Flightrec.record r
                ~fields:[ ("d", Json.Int d); ("i", Json.Int i) ]
                "test.storm"
            done))
  in
  List.iter Domain.join workers;
  let total = domains * per_domain in
  Alcotest.(check int) "every record counted" total (Flightrec.recorded r);
  let events = Flightrec.events r in
  Alcotest.(check int) "full ring survives" 64 (List.length events);
  let seqs = List.map (fun (ev : Flightrec.event) -> ev.Flightrec.seq) events in
  Alcotest.(check (list int)) "survivors are the dense newest window"
    (List.init 64 (fun i -> total - 64 + i))
    seqs

let test_flightrec_dump_roundtrip () =
  let r = Flightrec.create ~capacity:16 () in
  Flightrec.record r "serve.started";
  Flightrec.record r
    ~fields:
      [ ("job", Json.Int 3); ("op", Json.String "sleep");
        ("trace", Json.String "c12-0"); ("total_ms", Json.Float 4.25) ]
    "req.completed";
  (* Single-event JSON round trip preserves every field. *)
  (match Flightrec.events r with
  | [ _; ev ] -> begin
    match Flightrec.event_of_json (Flightrec.event_to_json ev) with
    | Ok ev' ->
      Alcotest.(check bool) "event JSON round trip" true (ev' = ev)
    | Error msg -> Alcotest.fail msg
  end
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs));
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "flightrec-%d.jsonl" (Unix.getpid ()))
  in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  (match Flightrec.dump_to_file r path with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  (match Flightrec.load_jsonl path with
  | Ok evs ->
    Alcotest.(check bool) "dump/load round trip" true
      (evs = Flightrec.events r)
  | Error msg -> Alcotest.fail msg);
  (* A malformed line aborts the load with a typed error, not an exception. *)
  let oc = open_out path in
  output_string oc "{\"seq\":0,\"kind\":\"ok\",\"t\":1.0,\"mono\":1.0}\nnot json\n";
  close_out oc;
  match Flightrec.load_jsonl path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected Error on malformed line"

(* A tiny cap still keeps the newest events after a live resize, and the
   resized ring wraps correctly from there — the property `--flight-cap`
   relies on. *)
let test_flightrec_set_capacity () =
  let r = Flightrec.create ~capacity:8 () in
  for i = 0 to 9 do
    Flightrec.record r ~fields:[ ("i", Json.Int i) ] "test.cap"
  done;
  Flightrec.set_capacity r 4;
  Alcotest.(check int) "capacity updated" 4 (Flightrec.capacity r);
  Alcotest.(check int) "recorded unaffected by resize" 10
    (Flightrec.recorded r);
  let seqs r =
    List.map (fun (ev : Flightrec.event) -> ev.Flightrec.seq)
      (Flightrec.events r)
  in
  Alcotest.(check (list int)) "shrink keeps the newest events"
    [ 6; 7; 8; 9 ] (seqs r);
  (* Wrap at the tiny cap: the next records overwrite the oldest slots. *)
  for i = 10 to 12 do
    Flightrec.record r ~fields:[ ("i", Json.Int i) ] "test.cap"
  done;
  Alcotest.(check (list int)) "tiny ring wraps cleanly"
    [ 9; 10; 11; 12 ] (seqs r);
  (* Growing keeps everything that survived. *)
  Flightrec.set_capacity r 16;
  Alcotest.(check (list int)) "grow preserves survivors"
    [ 9; 10; 11; 12 ] (seqs r);
  for i = 13 to 14 do
    Flightrec.record r ~fields:[ ("i", Json.Int i) ] "test.cap"
  done;
  Alcotest.(check (list int)) "grown ring accumulates"
    [ 9; 10; 11; 12; 13; 14 ] (seqs r)

(* --------------------------- runtime sampler --------------------------- *)

module Runtime = Aging_obs.Runtime

let gauge_value name =
  match Metrics.value_by_name name with
  | Some v -> v
  | None -> Alcotest.failf "gauge %s missing" name

let test_runtime_sampler_rates () =
  let now = ref 100. in
  let t = Runtime.create ~clock:(fun () -> !now) () in
  Runtime.sample t;
  Alcotest.(check (float 0.)) "first sample leaves rates at 0" 0.
    (gauge_value "runtime.rate.minor_words_per_s");
  let minor1 = gauge_value "runtime.gc.minor_words" in
  (* Allocate across a fake 2-second gap; the rate must divide the exact
     cumulative delta by the exact fake delta. *)
  let junk = ref [] in
  for i = 0 to 9999 do junk := (i, float_of_int i) :: !junk done;
  ignore (Sys.opaque_identity !junk);
  (* OCaml 5 only folds a domain's allocation counters into quick_stat at
     collection points; force one so the delta is visible. *)
  Gc.minor ();
  now := 102.;
  Runtime.sample t;
  let minor2 = gauge_value "runtime.gc.minor_words" in
  Alcotest.(check bool) "allocation moved the gauge" true (minor2 > minor1);
  Alcotest.(check (float 1e-6)) "rate = delta / fake dt"
    ((minor2 -. minor1) /. 2.)
    (gauge_value "runtime.rate.minor_words_per_s")

let test_runtime_sampler_gauges () =
  let t = Runtime.create () in
  Runtime.sample t;
  Alcotest.(check bool) "heap gauge positive" true
    (gauge_value "runtime.gc.heap_mb" > 0.);
  Alcotest.(check bool) "minor words positive" true
    (gauge_value "runtime.gc.minor_words" > 0.);
  (* procfs-backed gauges exist on Linux; elsewhere sampling must still
     have succeeded without them. *)
  (match Metrics.value_by_name "runtime.mem.rss_mb" with
  | Some rss -> Alcotest.(check bool) "rss plausible" true (rss > 1.)
  | None -> ());
  let totals = Runtime.totals () in
  Alcotest.(check bool) "totals: minor words positive" true
    (totals.Runtime.minor_words > 0.);
  Alcotest.(check bool) "totals: heap positive" true
    (totals.Runtime.heap_mb > 0.);
  (match totals.Runtime.rss_mb with
  | Some rss ->
    Alcotest.(check bool) "totals rss plausible" true (rss > 1.);
    (match totals.Runtime.hwm_mb with
    | Some hwm -> Alcotest.(check bool) "hwm >= rss" true (hwm >= rss -. 1.)
    | None -> ())
  | None -> ())

let test_runtime_sampler_thread () =
  let t = Runtime.create () in
  Alcotest.(check bool) "not running before start" false (Runtime.running t);
  Runtime.start ~period_s:0.01 t;
  Alcotest.(check bool) "running after start" true (Runtime.running t);
  Runtime.start t;  (* second start is a no-op *)
  Unix.sleepf 0.05;
  Runtime.stop t;
  Alcotest.(check bool) "stopped" false (Runtime.running t);
  Runtime.stop t;  (* idempotent *)
  Alcotest.(check bool) "background thread sampled" true
    (Metrics.value (Metrics.counter "runtime.samples") >= 2)

(* ----------------------------- openmetrics ----------------------------- *)

module Openmetrics = Aging_obs.Openmetrics

let test_openmetrics_sanitize () =
  Alcotest.(check string) "dots become underscores" "serve_latency_p99"
    (Openmetrics.sanitize_name "serve.latency.p99");
  Alcotest.(check string) "leading digit prefixed" "_9lives"
    (Openmetrics.sanitize_name "9lives");
  Alcotest.(check string) "colons survive" "ns:metric_x"
    (Openmetrics.sanitize_name "ns:metric-x");
  Alcotest.(check string) "empty becomes underscore" "_"
    (Openmetrics.sanitize_name "");
  Alcotest.(check string) "escape backslash quote newline"
    "a\\\\b\\\"c\\nd"
    (Openmetrics.escape_label_value "a\\b\"c\nd")

let test_openmetrics_render_parse_roundtrip () =
  let snapshot =
    [ ("test.om.requests", Metrics.Counter_value 7);
      ("test.om.depth", Metrics.Gauge_value 3.5);
      ( "test.om.lat_ms",
        Metrics.Histogram_value
          {
            Metrics.hs_count = 6;
            hs_sum = 123.5;
            hs_buckets = [ (1., 2); (10., 3); (infinity, 1) ];
          } ) ]
  in
  let text = Openmetrics.render_snapshot snapshot in
  Alcotest.(check bool) "ends with EOF" true
    (String.length text >= 6
    && String.sub text (String.length text - 6) 6 = "# EOF\n");
  match Openmetrics.parse text with
  | Error msg -> Alcotest.failf "own exposition does not parse: %s" msg
  | Ok samples ->
    Alcotest.(check (option (float 0.))) "counter sample" (Some 7.)
      (Openmetrics.find samples "test_om_requests_total");
    Alcotest.(check (option (float 0.))) "gauge sample" (Some 3.5)
      (Openmetrics.find samples "test_om_depth");
    Alcotest.(check (option (float 0.))) "histogram count" (Some 6.)
      (Openmetrics.find samples "test_om_lat_ms_count");
    Alcotest.(check (option (float 1e-9))) "histogram sum" (Some 123.5)
      (Openmetrics.find samples "test_om_lat_ms_sum");
    (* Buckets must be cumulative and monotone, with +Inf = count. *)
    let bucket le =
      match
        Openmetrics.find samples ~labels:[ ("le", le) ] "test_om_lat_ms_bucket"
      with
      | Some v -> v
      | None -> Alcotest.failf "bucket le=%s missing" le
    in
    Alcotest.(check (float 0.)) "first bucket" 2. (bucket "1");
    Alcotest.(check (float 0.)) "second bucket cumulative" 5. (bucket "10");
    Alcotest.(check (float 0.)) "+Inf bucket = count" 6. (bucket "+Inf")

let test_openmetrics_stored_roundtrip () =
  Metrics.reset ();
  let c = Metrics.counter "test.om.stored.counter" in
  Metrics.incr ~by:3 c;
  let h = Metrics.histogram ~bounds:[| 1.; 10. |] "test.om.stored.hist" in
  List.iter (Metrics.observe h) [ 0.5; 5.; 50. ];
  let stored = Json.of_string (Json.to_string (Metrics.to_json ())) in
  match Openmetrics.values_of_stored_json stored with
  | Error msg -> Alcotest.failf "stored snapshot rejected: %s" msg
  | Ok values ->
    (* Rendering the recovered snapshot equals rendering the live one for
       the entries we control. *)
    let text = Openmetrics.render_snapshot values in
    (match Openmetrics.parse text with
    | Error msg -> Alcotest.failf "stored render does not parse: %s" msg
    | Ok samples ->
      Alcotest.(check (option (float 0.))) "stored counter" (Some 3.)
        (Openmetrics.find samples "test_om_stored_counter_total");
      Alcotest.(check (option (float 0.))) "stored histogram +Inf" (Some 3.)
        (Openmetrics.find samples
           ~labels:[ ("le", "+Inf") ]
           "test_om_stored_hist_bucket"));
    Alcotest.(check bool) "render_stored agrees" true
      (Openmetrics.render_stored stored = Ok text)

let test_openmetrics_parse_rejects () =
  let bad s =
    match Openmetrics.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted malformed exposition %S" s
  in
  bad "";  (* no EOF *)
  bad "x_total 1\n";  (* no EOF *)
  bad "9bad 1\n# EOF\n";  (* illegal name *)
  bad "x{le=\"1\" 2\n# EOF\n";  (* unterminated labels *)
  bad "x notanumber\n# EOF\n"

(* ------------------------------- history ------------------------------- *)

module History = Aging_obs.History

let test_history_median_mad () =
  Alcotest.(check (float 1e-9)) "odd median" 3.
    (History.median [| 5.; 1.; 3. |]);
  Alcotest.(check (float 1e-9)) "even median" 2.5
    (History.median [| 1.; 2.; 3.; 4. |]);
  Alcotest.(check bool) "empty median is nan" true
    (Float.is_nan (History.median [||]));
  Alcotest.(check (float 1e-9)) "mad" 1.
    (History.mad [| 1.; 2.; 3.; 4.; 5. |]);
  Alcotest.(check (float 1e-9)) "nan entries ignored" 2.
    (History.median [| 1.; Float.nan; 2.; 3. |])

let test_history_drift () =
  let flat = [| 10.; 10.; 10.; 10.; 10. |] in
  Alcotest.(check bool) "flat window, matching value passes" false
    (History.drift ~z_thresh:4. ~window:flat 10.).History.drifting;
  let v = History.drift ~z_thresh:4. ~window:flat 50. in
  Alcotest.(check bool) "flat window, 5x step trips" true v.History.drifting;
  Alcotest.(check bool) "step off flat is infinite z" true
    (v.History.z = infinity);
  let noisy = [| 10.; 11.; 9.; 10.; 12.; 10.; 9.5 |] in
  Alcotest.(check bool) "in-band value passes" false
    (History.drift ~z_thresh:4. ~window:noisy 10.5).History.drifting;
  Alcotest.(check bool) "5x step trips a noisy window too" true
    (History.drift ~z_thresh:4. ~window:noisy 50.).History.drifting;
  (* One-sided: improvement is never drift. *)
  Alcotest.(check bool) "one-sided ignores decreases" false
    (History.drift ~one_sided:true ~z_thresh:4. ~window:noisy 0.)
      .History.drifting;
  Alcotest.(check bool) "one-sided still trips increases" true
    (History.drift ~one_sided:true ~z_thresh:4. ~window:noisy 50.)
      .History.drifting

let test_history_sparkline () =
  let s = History.sparkline [| 1.; 8. |] in
  Alcotest.(check string) "min and max blocks" "\xe2\x96\x81\xe2\x96\x88" s;
  Alcotest.(check string) "nan renders as space" " "
    (History.sparkline [| Float.nan |]);
  Alcotest.(check string) "empty" "" (History.sparkline [||]);
  (* Flat series renders mid blocks, one per value. *)
  let flat = History.sparkline [| 2.; 2.; 2. |] in
  Alcotest.(check int) "one block char per value" 9 (String.length flat)

let capture_with_qor name v =
  Run_ledger.note_qor name v;
  Run_ledger.capture ~tool:"test" ~subcommand:"hist" ~started_at:0. ~wall_s:0.
    ()

let test_history_rows_and_gate () =
  Metrics.reset ();
  let records = List.map (capture_with_qor "q") [ 10.; 10.1; 9.9; 10.; 10. ] in
  (match History.rows_of_records records with
  | rows -> begin
    match List.find_opt (fun r -> r.History.r_name = "q") rows with
    | None -> Alcotest.fail "qor row missing"
    | Some row ->
      Alcotest.(check bool) "two-sided qor row" false row.History.r_one_sided;
      Alcotest.(check int) "one value per record" 5
        (Array.length row.History.r_values);
      Alcotest.(check (float 1e-9)) "oldest first" 10.
        row.History.r_values.(0);
      let g = History.gate row in
      Alcotest.(check bool) "flat ledger passes" true
        (g.History.g_status = History.Pass)
  end);
  (* A 5x step in the newest record trips the gate. *)
  let drifted = records @ [ capture_with_qor "q" 50. ] in
  let row =
    List.find (fun r -> r.History.r_name = "q")
      (History.rows_of_records drifted)
  in
  let g = History.gate row in
  Alcotest.(check bool) "5x step drifts" true
    (g.History.g_status = History.Drift);
  Alcotest.(check (float 1e-9)) "last value surfaced" 50. g.History.g_last;
  (* Too little history: informational, never a gate failure. *)
  let short =
    List.filteri (fun i _ -> i < 3) drifted
    |> History.rows_of_records
    |> List.find (fun r -> r.History.r_name = "q")
  in
  Alcotest.(check bool) "short window is Short" true
    ((History.gate short).History.g_status = History.Short)

let test_history_health_counter_one_sided () =
  Metrics.reset ();
  let stalled = Metrics.counter "serve.worker.stalled" in
  let mk () =
    Run_ledger.capture ~tool:"test" ~subcommand:"hist" ~started_at:0.
      ~wall_s:0. ()
  in
  let quiet = List.init 5 (fun _ -> mk ()) in
  Metrics.incr ~by:3 stalled;
  let records = quiet @ [ mk () ] in
  let row =
    match
      List.find_opt
        (fun r -> r.History.r_name = "serve.worker.stalled")
        (History.rows_of_records records)
    with
    | Some row -> row
    | None -> Alcotest.fail "health counter series missing"
  in
  Alcotest.(check bool) "health counter is one-sided" true
    row.History.r_one_sided;
  Alcotest.(check bool) "stall appearing from zero drifts" true
    ((History.gate row).History.g_status = History.Drift);
  (* The reverse direction — counters falling back to zero — passes. *)
  let falling =
    {
      row with
      History.r_values = [| 3.; 3.; 3.; 3.; 3.; 0. |];
    }
  in
  Alcotest.(check bool) "improvement passes one-sided" true
    ((History.gate falling).History.g_status = History.Pass)

let suite =
  [
    Alcotest.test_case "counter get-or-create / reset" `Quick test_counter;
    Alcotest.test_case "metric kind mismatch" `Quick test_kind_mismatch;
    Alcotest.test_case "gauge" `Quick test_gauge;
    Alcotest.test_case "histogram buckets" `Quick test_histogram;
    Alcotest.test_case "metrics JSON export" `Quick test_metrics_json;
    Alcotest.test_case "json round trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parser" `Quick test_json_parse;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span exception safety" `Quick
      test_span_exception_safety;
    Alcotest.test_case "span histogram without recording" `Quick
      test_span_histogram_without_recording;
    Alcotest.test_case "log levels" `Quick test_log_levels;
    Alcotest.test_case "build counters match report (clean)" `Slow
      test_build_metrics_clean;
    Alcotest.test_case "build counters match report (faulty)" `Slow
      test_build_metrics_faulty;
    Alcotest.test_case "build counters match report (parallel)" `Slow
      test_build_metrics_parallel;
    Alcotest.test_case "percentiles from buckets" `Quick test_percentiles;
    Alcotest.test_case "approx percentile" `Quick test_approx_percentile;
    Alcotest.test_case "buckets from JSON snapshot" `Quick
      test_buckets_of_json;
    Alcotest.test_case "non-finite float JSON" `Quick test_nonfinite_floats;
    Alcotest.test_case "span JSON round trip" `Quick test_span_json_roundtrip;
    Alcotest.test_case "ledger capture/append/load" `Quick
      test_ledger_roundtrip;
    Alcotest.test_case "ledger selectors" `Quick test_ledger_select;
    Alcotest.test_case "ledger skips corrupt lines" `Quick
      test_ledger_corrupt_lines;
    Alcotest.test_case "ledger concurrent appends" `Slow
      test_ledger_concurrent_appends;
    Alcotest.test_case "chrome trace export (parallel build)" `Slow
      test_trace_export_parallel;
    Alcotest.test_case "profile self times telescope" `Slow
      test_profile_telescopes;
    Alcotest.test_case "flight recorder wraps and overwrites" `Quick
      test_flightrec_wrap;
    Alcotest.test_case "flight recorder concurrent domains" `Slow
      test_flightrec_concurrent;
    Alcotest.test_case "flight recorder dump round trip" `Quick
      test_flightrec_dump_roundtrip;
    Alcotest.test_case "flight recorder live resize" `Quick
      test_flightrec_set_capacity;
    Alcotest.test_case "runtime sampler rates (fake clock)" `Quick
      test_runtime_sampler_rates;
    Alcotest.test_case "runtime sampler gauges and totals" `Quick
      test_runtime_sampler_gauges;
    Alcotest.test_case "runtime sampler background thread" `Quick
      test_runtime_sampler_thread;
    Alcotest.test_case "openmetrics name/label sanitization" `Quick
      test_openmetrics_sanitize;
    Alcotest.test_case "openmetrics render/parse round trip" `Quick
      test_openmetrics_render_parse_roundtrip;
    Alcotest.test_case "openmetrics from stored snapshot" `Quick
      test_openmetrics_stored_roundtrip;
    Alcotest.test_case "openmetrics parser rejects malformed" `Quick
      test_openmetrics_parse_rejects;
    Alcotest.test_case "history median/mad" `Quick test_history_median_mad;
    Alcotest.test_case "history robust drift" `Quick test_history_drift;
    Alcotest.test_case "history sparkline" `Quick test_history_sparkline;
    Alcotest.test_case "history rows and gate over a ledger" `Quick
      test_history_rows_and_gate;
    Alcotest.test_case "history health counters gate one-sided" `Quick
      test_history_health_counter_one_sided;
  ]
