(* Telemetry library: metrics registry, JSON, spans, and agreement between
   the process-global counters and the characterization report of PR 1. *)

module Metrics = Aging_obs.Metrics
module Span = Aging_obs.Span
module Log = Aging_obs.Log
module Json = Aging_obs.Json
module Scenario = Aging_physics.Scenario
module Axes = Aging_liberty.Axes
module Characterize = Aging_liberty.Characterize
module Catalog = Aging_cells.Catalog

(* ------------------------------ metrics ------------------------------ *)

let test_counter () =
  let c = Metrics.counter "test.obs.counter" in
  let c' = Metrics.counter "test.obs.counter" in
  Metrics.incr c;
  Metrics.incr ~by:4 c';
  Alcotest.(check int) "get-or-create shares storage" 5 (Metrics.value c);
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes in place" 0 (Metrics.value c);
  Metrics.incr c;
  Alcotest.(check int) "handle survives reset" 1 (Metrics.value c')

let test_kind_mismatch () =
  ignore (Metrics.counter "test.obs.kind");
  (try
     ignore (Metrics.gauge "test.obs.kind");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  try
    ignore (Metrics.histogram "test.obs.kind");
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_gauge () =
  let g = Metrics.gauge "test.obs.gauge" in
  Metrics.set g 2.5;
  Metrics.set g 42.;
  Alcotest.(check (float 0.)) "last write wins" 42. (Metrics.gauge_value g)

let test_histogram () =
  let h = Metrics.histogram ~bounds:[| 1.; 10.; 100. |] "test.obs.hist" in
  List.iter (Metrics.observe h) [ 0.5; 5.; 5.; 50.; 5000. ];
  Alcotest.(check int) "count" 5 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 5060.5 (Metrics.histogram_sum h);
  Alcotest.(check (list (pair (float 0.) int)))
    "per-bucket counts with overflow"
    [ (1., 1); (10., 2); (100., 1); (infinity, 1) ]
    (Metrics.bucket_counts h);
  Alcotest.check_raises "non-ascending bounds"
    (Invalid_argument
       "Aging_obs.Metrics: histogram test.obs.hist.bad bounds not ascending")
    (fun () ->
      ignore (Metrics.histogram ~bounds:[| 2.; 1. |] "test.obs.hist.bad"))

let test_metrics_json () =
  let c = Metrics.counter "test.obs.json.counter" in
  Metrics.incr ~by:7 c;
  let h = Metrics.histogram ~bounds:[| 1. |] "test.obs.json.hist" in
  Metrics.observe h 0.5;
  Metrics.observe h 2.;
  (* The export must survive a round trip through its own parser and keep
     counter integers exact. *)
  let doc = Json.of_string (Json.to_string ~pretty:true (Metrics.to_json ())) in
  (match Json.member "test.obs.json.counter" doc with
  | Some entry ->
    Alcotest.(check (option string)) "type tag" (Some "counter")
      (match Json.member "type" entry with
      | Some (Json.String s) -> Some s
      | _ -> None);
    Alcotest.(check bool) "exact integer value" true
      (Json.member "value" entry = Some (Json.Int 7))
  | None -> Alcotest.fail "counter missing from JSON export");
  match Json.member "test.obs.json.hist" doc with
  | Some entry ->
    Alcotest.(check bool) "histogram count" true
      (Json.member "count" entry = Some (Json.Int 2));
    (* the overflow bucket bound serializes as the string "+Inf" *)
    let buckets =
      match Json.member "buckets" entry with Some (Json.List l) -> l | _ -> []
    in
    Alcotest.(check bool) "overflow bound is \"+Inf\"" true
      (List.exists
         (fun b -> Json.member "le" b = Some (Json.String "+Inf"))
         buckets)
  | None -> Alcotest.fail "histogram missing from JSON export"

(* ------------------------------- json ------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
        ("int", Json.Int (-42));
        ("big", Json.Int max_int);
        ("float", Json.Float 1.6180339887498949);
        ("tiny", Json.Float 4.9302499294281006e-11);
        ("str", Json.String "a\"b\\c\n\t\x01é");
        ("empty_obj", Json.Obj []);
        ("empty_list", Json.List []);
      ]
  in
  Alcotest.(check bool) "compact round trip" true
    (Json.of_string (Json.to_string v) = v);
  Alcotest.(check bool) "pretty round trip" true
    (Json.of_string (Json.to_string ~pretty:true v) = v)

let test_json_parse () =
  Alcotest.(check bool) "escapes" true
    (Json.of_string {|"a\u00e9\u0041\n"|} = Json.String "aéA\n");
  Alcotest.(check bool) "number classes" true
    (Json.of_string "[1, 1.0, 1e2]"
    = Json.List [ Json.Int 1; Json.Float 1.; Json.Float 100. ]);
  let bad s =
    try
      ignore (Json.of_string s);
      Alcotest.failf "accepted malformed %S" s
    with Json.Parse_error _ -> ()
  in
  List.iter bad [ ""; "{"; "[1,]"; "{\"a\":1} x"; "nul"; "\"\\q\"" ]

(* ------------------------------- spans ------------------------------- *)

let test_span_nesting () =
  Span.reset ();
  Span.set_recording true;
  let r =
    Span.with_ "test.outer" ~attrs:[ ("k", "v") ] (fun () ->
        Span.with_ "test.inner" (fun () -> ());
        Span.with_ "test.inner" (fun () -> ());
        17)
  in
  Span.set_recording false;
  Alcotest.(check int) "with_ returns the result" 17 r;
  match Span.roots () with
  | [ outer ] ->
    Alcotest.(check string) "root name" "test.outer" outer.Span.name;
    Alcotest.(check (list (pair string string))) "attrs" [ ("k", "v") ]
      outer.Span.attrs;
    Alcotest.(check int) "two children" 2 (List.length outer.Span.children);
    Alcotest.(check bool) "outcome completed" true
      (outer.Span.outcome = Span.Completed);
    List.iter
      (fun (c : Span.t) ->
        Alcotest.(check string) "child name" "test.inner" c.Span.name;
        Alcotest.(check bool) "child within parent" true
          (c.Span.duration <= outer.Span.duration +. 1e-9))
      outer.Span.children
  | roots -> Alcotest.failf "expected 1 root, got %d" (List.length roots)

let test_span_exception_safety () =
  Span.reset ();
  Span.set_recording true;
  Metrics.reset ();
  (try
     Span.with_ "test.boom" (fun () ->
         Span.with_ "test.boom.inner" (fun () -> failwith "kaboom"))
   with Failure _ -> ());
  (* The stack unwound cleanly: a later span is a new root, not a child of
     the raised one. *)
  Span.with_ "test.after" (fun () -> ());
  Span.set_recording false;
  (match Span.roots () with
  | [ boom; after ] ->
    Alcotest.(check string) "raised root" "test.boom" boom.Span.name;
    Alcotest.(check bool) "outcome raised" true
      (match boom.Span.outcome with
      | Span.Raised msg -> String.length msg > 0
      | Span.Completed -> false);
    Alcotest.(check int) "raised child recorded" 1
      (List.length boom.Span.children);
    Alcotest.(check string) "next span is a fresh root" "test.after"
      after.Span.name
  | roots -> Alcotest.failf "expected 2 roots, got %d" (List.length roots));
  Alcotest.(check int) "error counter bumped" 1
    (Metrics.value (Metrics.counter "span.test.boom.errors"))

let test_span_histogram_without_recording () =
  Span.reset ();
  Metrics.reset ();
  Alcotest.(check bool) "recording off" false (Span.recording ());
  Span.with_ "test.cheap" (fun () -> ());
  Span.with_ "test.cheap" (fun () -> ());
  Alcotest.(check (list (pair string string))) "no tree recorded" []
    (List.map (fun (s : Span.t) -> (s.Span.name, "")) (Span.roots ()));
  Alcotest.(check int) "duration histogram still fed" 2
    (Metrics.histogram_count (Metrics.histogram "span.test.cheap"))

(* ---------------------- log levels and warnings ---------------------- *)

let test_log_levels () =
  let saved = Log.level () in
  Fun.protect ~finally:(fun () -> Log.set_level saved) @@ fun () ->
  Metrics.reset ();
  Log.set_level Log.Quiet;
  Log.warnf "test" "suppressed %d" 1;
  Alcotest.(check int) "quiet still counts warnings" 1
    (Metrics.value (Metrics.counter "log.warnings"));
  Alcotest.(check (option string)) "level names parse"
    (Some "debug")
    (match Log.level_of_string "debug" with
    | Some Log.Debug -> Some "debug"
    | _ -> None);
  Alcotest.(check bool) "unknown level rejected" true
    (Log.level_of_string "loud" = None);
  Log.set_level Log.Warn;
  Alcotest.(check bool) "warn enabled at Warn" true (Log.enabled Log.Warn);
  Alcotest.(check bool) "info disabled at Warn" false (Log.enabled Log.Info)

(* ----------- counters agree with the characterization report ---------- *)

let totals_vs_counters ?(jobs = 1) ?(cells = [ "INV_X1" ]) ~backend ~scenario
    () =
  Metrics.reset ();
  let _lib, report =
    Characterize.library_report ~backend ~jobs
      ~cells:(List.map Catalog.find_exn cells)
      ~axes:Axes.coarse ~name:"obs" ~scenario ()
  in
  let t = Characterize.report_totals report in
  let v name = Metrics.value (Metrics.counter name) in
  Alcotest.(check int) "measured = clean" t.Characterize.clean
    (v "characterize.points.measured");
  Alcotest.(check int) "retried = recovered" t.Characterize.recovered
    (v "characterize.points.retried");
  Alcotest.(check int) "repaired = degraded" t.Characterize.degraded
    (v "characterize.points.repaired");
  Alcotest.(check int) "failed = lost" t.Characterize.lost
    (v "characterize.points.failed");
  Alcotest.(check int) "cell count" (List.length cells)
    (v "characterize.cells");
  t

let test_build_metrics_clean () =
  let t =
    totals_vs_counters ~backend:Characterize.default_backend
      ~scenario:(Scenario.scenario Scenario.fresh) ()
  in
  Alcotest.(check bool) "grid measured" true (t.Characterize.points > 0);
  let v name = Metrics.value (Metrics.counter name) in
  Alcotest.(check bool) "engine ran transients" true (v "engine.transients" > 0);
  Alcotest.(check bool) "engine stepped" true
    (v "engine.steps" > v "engine.transients");
  Alcotest.(check bool) "newton iterated" true
    (v "engine.newton_iterations" >= v "engine.steps")

let test_build_metrics_faulty () =
  let fault = { Characterize.rate = 1.0; seed = 7; depth = 1 } in
  let t =
    totals_vs_counters
      ~backend:(Characterize.Faulty (fault, Characterize.default_backend))
      ~scenario:(Scenario.scenario Scenario.worst_case) ()
  in
  Alcotest.(check bool) "every point needed a retry" true
    (t.Characterize.recovered > 0)

let test_build_metrics_parallel () =
  (* Counters are bumped from worker domains during a parallel build; the
     registry's atomics must not lose increments, so the counters still
     agree exactly with the (deterministically merged) report. *)
  let t =
    totals_vs_counters ~jobs:4
      ~cells:[ "INV_X1"; "NAND2_X1"; "NOR2_X1" ]
      ~backend:Characterize.default_backend
      ~scenario:(Scenario.scenario Scenario.worst_case) ()
  in
  Alcotest.(check bool) "grid measured" true (t.Characterize.points > 0);
  Alcotest.(check int) "counters partition the grid" t.Characterize.points
    (t.Characterize.clean + t.Characterize.recovered + t.Characterize.degraded
    + t.Characterize.lost)

let suite =
  [
    Alcotest.test_case "counter get-or-create / reset" `Quick test_counter;
    Alcotest.test_case "metric kind mismatch" `Quick test_kind_mismatch;
    Alcotest.test_case "gauge" `Quick test_gauge;
    Alcotest.test_case "histogram buckets" `Quick test_histogram;
    Alcotest.test_case "metrics JSON export" `Quick test_metrics_json;
    Alcotest.test_case "json round trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parser" `Quick test_json_parse;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span exception safety" `Quick
      test_span_exception_safety;
    Alcotest.test_case "span histogram without recording" `Quick
      test_span_histogram_without_recording;
    Alcotest.test_case "log levels" `Quick test_log_levels;
    Alcotest.test_case "build counters match report (clean)" `Slow
      test_build_metrics_clean;
    Alcotest.test_case "build counters match report (faulty)" `Slow
      test_build_metrics_faulty;
    Alcotest.test_case "build counters match report (parallel)" `Slow
      test_build_metrics_parallel;
  ]
