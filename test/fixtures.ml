(* Shared, memoized test fixtures: characterizing even a small library
   costs a second or two, so every suite shares these.  They characterize
   with [Pool.default_jobs] worker domains — results are identical to a
   sequential build, so suites see the same fixtures; the @parallel-smoke
   alias sets AGING_JOBS=4 to force the parallel path through every
   fixture-based test.

   The memo is keyed on the full effective build configuration — jobs,
   cache directory, surrogate flags — not just the fixture name.  Before
   this, two suites asking for "the" library under different effective
   configs (say @parallel-smoke's AGING_JOBS=4 and a surrogate test)
   would silently share whichever build ran first. *)

module Scenario = Aging_physics.Scenario
module Axes = Aging_liberty.Axes
module Characterize = Aging_liberty.Characterize
module Catalog = Aging_cells.Catalog

let jobs = Aging_util.Pool.default_jobs ()

let subset_names =
  [
    "INV_X1"; "INV_X2"; "INV_X4"; "INV_X1H"; "NAND2_X1"; "NAND2_X2";
    "NAND2_X4"; "NAND2_X1H"; "NOR2_X1"; "NOR2_X2"; "NAND3_X1"; "NOR3_X1";
    "AND2_X1"; "OR2_X1"; "AOI21_X1"; "OAI21_X1"; "XOR2_X1"; "XNOR2_X1";
    "MUX2_X1"; "MUXI2_X1"; "BUF_X1"; "BUF_X4"; "FA_X1"; "HA_X1"; "DFF_X1";
    "TIELO_X1"; "TIEHI_X1";
  ]

let subset_cells = lazy (List.map Catalog.find_exn subset_names)

(* One string that pins down every build knob a fixture can vary on. *)
let surrogate_tag = function
  | None -> "off"
  | Some s ->
    Printf.sprintf "tol=%h,sample=%d,lambda=%h,conf=%h,pool=%s"
      s.Characterize.sur_tol s.Characterize.sur_sample s.Characterize.sur_lambda
      s.Characterize.sur_conf
      (match s.Characterize.sur_pool with
      | None -> "-"
      | Some p -> Aging_fit.Trainset.digest p)

let config_key ~kind ~name ~jobs ~cache_dir ~surrogate =
  Printf.sprintf "%s|%s|jobs=%d|cache=%s|surrogate=%s" kind name jobs
    (Option.value cache_dir ~default:"-")
    (surrogate_tag surrogate)

let memo_mu = Mutex.create ()
let library_memo : (string, Aging_liberty.Library.t) Hashtbl.t =
  Hashtbl.create 8
let deglib_memo : (string, Aging_core.Degradation_library.t) Hashtbl.t =
  Hashtbl.create 4

let memoized memo key build =
  Mutex.lock memo_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock memo_mu)
    (fun () ->
      match Hashtbl.find_opt memo key with
      | Some v -> v
      | None ->
        let v = build () in
        Hashtbl.add memo key v;
        v)

let shared_library ?surrogate ~name ~scenario () =
  let jobs = Aging_util.Pool.default_jobs () in
  let key = config_key ~kind:"library" ~name ~jobs ~cache_dir:None ~surrogate in
  memoized library_memo key (fun () ->
      Characterize.library ~jobs ?surrogate
        ~cells:(Lazy.force subset_cells)
        ~axes:Axes.coarse ~name ~scenario ())

let shared_deglib ?surrogate ?cache_dir () =
  let jobs = Aging_util.Pool.default_jobs () in
  let key =
    config_key ~kind:"deglib" ~name:"test" ~jobs ~cache_dir ~surrogate
  in
  memoized deglib_memo key (fun () ->
      Aging_core.Degradation_library.create ~jobs ?cache_dir ?surrogate
        ~cells:(Lazy.force subset_cells)
        ~axes:Axes.coarse ())

let fresh_library =
  lazy
    (shared_library ~name:"test-fresh"
       ~scenario:(Scenario.scenario Scenario.fresh)
       ())

let aged_library =
  lazy
    (shared_library ~name:"test-aged"
       ~scenario:(Scenario.scenario Scenario.worst_case)
       ())

let deglib = lazy (shared_deglib ())

(* Bit-identity of the shared fixture across job counts.  The fixture
   characterizes once per process (the [lazy] above) with
   [Pool.default_jobs] worker domains — whatever AGING_JOBS says; a
   sequential rebuild of the same cells must agree entry for entry, or
   suites would see different fixtures depending on the environment.
   [Cell.logic] is a closure, so compare the data projection of each
   entry rather than the entry itself. *)
let jobs_identity_error () =
  let module Library = Aging_liberty.Library in
  let project (e : Library.entry) =
    (e.Library.indexed_name, e.Library.corner, e.Library.arcs,
     e.Library.pin_caps, e.Library.setup_time)
  in
  let sequential =
    Characterize.library ~jobs:1
      ~cells:(Lazy.force subset_cells)
      ~axes:Axes.coarse ~name:"test-fresh"
      ~scenario:(Scenario.scenario Scenario.fresh)
      ()
  in
  let shared = Lazy.force fresh_library in
  let a = List.map project (Library.entries shared) in
  let b = List.map project (Library.entries sequential) in
  if List.length a <> List.length b then
    Some
      (Printf.sprintf "entry count differs: %d (jobs=%d) vs %d (sequential)"
         (List.length a) jobs (List.length b))
  else
    List.fold_left2
      (fun acc ea eb ->
        match acc with
        | Some _ -> acc
        | None ->
          if ea = eb then None
          else
            let name, _, _, _, _ = ea in
            Some
              (Printf.sprintf
                 "entry %s differs between jobs=%d and sequential builds"
                 name jobs))
      None a b

(* Cycle-accurate equivalence of two netlists over random input vectors. *)
let equivalent ?(cycles = 100) ?(seed = 11L) a b =
  let module N = Aging_netlist.Netlist in
  let rng = Aging_util.Rng.create seed in
  let ca = N.compile a and cb = N.compile b in
  let sa = ref (N.initial_state a) and sb = ref (N.initial_state b) in
  let ok = ref true in
  for _ = 1 to cycles do
    let inputs = List.map (fun (p, _) -> (p, Aging_util.Rng.bool rng)) a.N.input_ports in
    let oa, na = N.compiled_cycle ca !sa ~inputs in
    let ob, nb = N.compiled_cycle cb !sb ~inputs in
    sa := na;
    sb := nb;
    if List.sort compare oa <> List.sort compare ob then ok := false
  done;
  !ok

let close ?(tol = 1e-9) a b = Float.abs (a -. b) <= tol

let check_close ?tol msg expected actual =
  if not (close ?tol expected actual) then
    Alcotest.failf "%s: expected %.6g, got %.6g" msg expected actual

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest ~speed_level:`Quick (QCheck2.Test.make ~count ~name gen prop)
