module Scenario = Aging_physics.Scenario
module Library = Aging_liberty.Library
module Axes = Aging_liberty.Axes
module N = Aging_netlist.Netlist
module Designs = Aging_designs.Designs
module Deg = Aging_core.Degradation_library
module Guardband = Aging_core.Guardband
module Aging_synthesis = Aging_core.Aging_synthesis
module System_eval = Aging_core.System_eval
module Path_demo = Aging_core.Path_demo
module Image = Aging_image.Image
module Dct = Aging_image.Dct

let deglib () = Lazy.force Fixtures.deglib

let test_deglib_memoization () =
  let t = deglib () in
  let a = Deg.fresh t and b = Deg.fresh t in
  Alcotest.(check bool) "same library object" true (a == b);
  let w = Deg.worst_case t in
  Alcotest.(check bool) "distinct corners distinct" true (not (a == w))

let metric name =
  Option.value ~default:0. (Aging_obs.Metrics.value_by_name name)

let test_deglib_memo_bounded () =
  (* A resident service must not grow the in-memory memo without limit:
     with cap 2, a third corner evicts the least-recently-used library,
     the counters record it, and the evicted corner is transparently
     re-characterized to an identical library on the next request. *)
  let cells = [ Aging_cells.Catalog.find_exn "INV_X1" ] in
  let t = Deg.create ~cells ~axes:Axes.coarse ~memo_cap:2 () in
  Alcotest.(check int) "cap recorded" 2 (Deg.memo_cap t);
  let c1 = Scenario.corner ~lambda_p:0.1 ~lambda_n:0.1 in
  let c2 = Scenario.corner ~lambda_p:0.2 ~lambda_n:0.2 in
  let c3 = Scenario.corner ~lambda_p:0.3 ~lambda_n:0.3 in
  let d lib =
    Library.delay_of
      (List.hd (Library.find_exn lib "INV_X1").Library.arcs)
      ~dir:Library.Rise ~slew:4e-11 ~load:2e-15
  in
  let lib1 = Deg.corner t c1 in
  ignore (Deg.corner t c2);
  Alcotest.(check bool) "memo within cap" true (Deg.memo_length t <= 2);
  let hit0 = metric "cache.memo_hit" in
  let lib2 = Deg.corner t c2 in
  Alcotest.(check bool) "resident corner is a memo hit" true
    (Deg.corner t c2 == lib2 && metric "cache.memo_hit" > hit0);
  let evict0 = metric "cache.memo_evict" in
  ignore (Deg.corner t c3);
  Alcotest.(check bool) "third corner evicts" true
    (metric "cache.memo_evict" > evict0);
  Alcotest.(check int) "memo stays at cap" 2 (Deg.memo_length t);
  (* The evicted corner rebuilds to an identical library (fresh object). *)
  let lib1' = Deg.corner t c1 in
  Alcotest.(check bool) "evicted library was dropped" true (not (lib1 == lib1'));
  Alcotest.(check (float 0.)) "re-characterization is identical" (d lib1)
    (d lib1');
  Alcotest.check_raises "memo_cap validated"
    (Invalid_argument "Degradation_library.create: memo_cap must be >= 1")
    (fun () -> ignore (Deg.create ~cells ~axes:Axes.coarse ~memo_cap:0 ()))

let test_deglib_disk_cache () =
  let dir = Filename.temp_file "alib" "" in
  Sys.remove dir;
  let cells = [ Aging_cells.Catalog.find_exn "INV_X1" ] in
  let t1 = Deg.create ~cells ~axes:Axes.coarse ~cache_dir:dir () in
  let lib1 = Deg.worst_case t1 in
  Alcotest.(check bool) "cache file written" true
    (Array.length (Sys.readdir dir) > 0);
  (* A second manager must reload rather than re-characterize; compare a
     table value exactly. *)
  let t2 = Deg.create ~cells ~axes:Axes.coarse ~cache_dir:dir () in
  let lib2 = Deg.worst_case t2 in
  let d lib =
    Library.delay_of
      (List.hd (Library.find_exn lib "INV_X1").Library.arcs)
      ~dir:Library.Rise ~slew:4e-11 ~load:2e-15
  in
  Alcotest.(check (float 0.)) "identical tables from cache" (d lib1) (d lib2)

let test_deglib_corrupt_cache_rebuilds () =
  let dir = Filename.temp_file "alib" "" in
  Sys.remove dir;
  let cells = [ Aging_cells.Catalog.find_exn "INV_X1" ] in
  let t1 = Deg.create ~cells ~axes:Axes.coarse ~cache_dir:dir () in
  let lib1 = Deg.worst_case t1 in
  (* Truncate every cache file mid-stream: a partial/corrupt .alib must be
     treated as a miss, not crash the loader. *)
  Array.iter
    (fun name ->
      let path = Filename.concat dir name in
      let oc = open_out_gen [ Open_wronly; Open_trunc ] 0o644 path in
      output_string oc "library broken\nslews 1e-11";
      close_out oc)
    (Sys.readdir dir);
  let t2 = Deg.create ~cells ~axes:Axes.coarse ~cache_dir:dir () in
  let lib2 = Deg.worst_case t2 in
  let d lib =
    Library.delay_of
      (List.hd (Library.find_exn lib "INV_X1").Library.arcs)
      ~dir:Library.Rise ~slew:4e-11 ~load:2e-15
  in
  Alcotest.(check (float 0.)) "rebuilt library matches original" (d lib1) (d lib2);
  Alcotest.(check int) "rebuild was a real characterization" 1
    (List.length (Deg.build_reports t2));
  (* The corrupt file must have been overwritten with a loadable one. *)
  let t3 = Deg.create ~cells ~axes:Axes.coarse ~cache_dir:dir () in
  ignore (Deg.worst_case t3);
  Alcotest.(check int) "third manager hits the rewritten cache" 0
    (List.length (Deg.build_reports t3))

let test_fingerprint_sensitivity () =
  (* Every configuration knob must reach the cache fingerprint — including
     the LAST axis point and the LAST cell, which the old [Hashtbl.hash]
     fingerprint never saw (its traversal stops after 10 meaningful
     nodes), silently serving stale cache files. *)
  let cells =
    List.map Aging_cells.Catalog.find_exn [ "INV_X1"; "NAND2_X1"; "NOR2_X1" ]
  in
  let fp ?(cells = cells) ?(axes = Axes.coarse) ?(years = 10.) ?backend () =
    Deg.fingerprint (Deg.create ~cells ~axes ~years ?backend ())
  in
  let perturb_last a = Array.mapi (fun i x ->
      if i = Array.length a - 1 then x *. (1. +. 1e-9) else x) a
  in
  let base = fp () in
  Alcotest.(check string) "same config, same fingerprint" base (fp ());
  let differs name other =
    Alcotest.(check bool) (name ^ " changes fingerprint") true (other <> base)
  in
  differs "last load axis point"
    (fp ~axes:{ Axes.coarse with Axes.loads = perturb_last Axes.coarse.Axes.loads } ());
  differs "last slew axis point"
    (fp ~axes:{ Axes.coarse with Axes.slews = perturb_last Axes.coarse.Axes.slews } ());
  differs "dropping the last cell"
    (fp ~cells:(List.filteri (fun i _ -> i < 2) cells) ());
  differs "lifetime" (fp ~years:7. ());
  differs "backend" (fp ~backend:Aging_liberty.Characterize.Analytic ())

let test_nested_cache_dir () =
  (* --cache-dir a/b/c used to crash in [Sys.mkdir] (not recursive); the
     nested directory must be created and round-trip like a flat one. *)
  let root = Filename.temp_file "alib" "" in
  Sys.remove root;
  let dir = Filename.concat (Filename.concat root "aged") "v2" in
  let cells = [ Aging_cells.Catalog.find_exn "INV_X1" ] in
  let t1 = Deg.create ~cells ~axes:Axes.coarse ~cache_dir:dir () in
  ignore (Deg.worst_case t1);
  Alcotest.(check bool) "nested cache file written" true
    (Sys.is_directory dir && Array.length (Sys.readdir dir) > 0);
  let t2 = Deg.create ~cells ~axes:Axes.coarse ~cache_dir:dir () in
  ignore (Deg.worst_case t2);
  Alcotest.(check int) "second manager served from nested cache" 0
    (List.length (Deg.build_reports t2))

let test_complete_parallel_matches_sequential () =
  let cells =
    List.map Aging_cells.Catalog.find_exn [ "INV_X1"; "NAND2_X1" ]
  in
  let corners = [ Scenario.fresh; Scenario.worst_case ] in
  let build jobs =
    Deg.complete (Deg.create ~cells ~axes:Axes.coarse ~jobs ()) corners
  in
  let seq = build 1 and par = build 2 in
  Alcotest.(check (list string)) "same entries in the same order"
    (Library.names seq) (Library.names par);
  List.iter2
    (fun (a : Library.entry) (b : Library.entry) ->
      Alcotest.(check bool)
        (a.Library.indexed_name ^ ": identical arcs") true
        (a.Library.arcs = b.Library.arcs))
    (Library.entries seq) (Library.entries par)

let test_vth_only_corner_faster () =
  let t = deglib () in
  let full = Deg.worst_case t in
  let vth = Deg.worst_case ~mode:Aging_physics.Degradation.Vth_only t in
  let d lib name =
    Library.delay_of
      (List.hd (Library.find_exn lib name).Library.arcs)
      ~dir:Library.Rise ~slew:4e-11 ~load:4e-15
  in
  Alcotest.(check bool) "vth-only underestimates NAND rise aging" true
    (d vth "NAND2_X1" < d full "NAND2_X1")

let test_complete_library_corners () =
  let t = deglib () in
  let corners = [ Scenario.fresh; Scenario.worst_case ] in
  let lib = Deg.complete t corners in
  Alcotest.(check bool) "indexed naming" true
    (Library.find lib "NAND2_X1@1.0_1.0" <> None
    && Library.find lib "NAND2_X1@0.0_0.0" <> None)

let test_single_opc_scaling () =
  let t = deglib () in
  let pseudo = Deg.single_opc t Scenario.worst_case in
  let fresh = Deg.fresh t in
  let e_p = Library.find_exn pseudo "NAND2_X1" in
  let e_f = Library.find_exn fresh "NAND2_X1" in
  let ratio slew load =
    Library.delay_of (List.hd e_p.Library.arcs) ~dir:Library.Rise ~slew ~load
    /. Library.delay_of (List.hd e_f.Library.arcs) ~dir:Library.Rise ~slew ~load
  in
  (* Single-OPC model applies one uniform ratio everywhere. *)
  Fixtures.check_close ~tol:1e-6 "uniform ratio" (ratio 1e-11 1e-15) (ratio 4e-10 1.5e-14);
  Alcotest.(check bool) "ratio within clamp" true
    (ratio 1e-11 1e-15 >= 0.2 && ratio 1e-11 1e-15 <= 8.)

let test_guardband_static () =
  let t = deglib () in
  let design = Designs.counter ~bits:8 in
  let g = Guardband.static ~deglib:t ~corner:Scenario.worst_case design in
  Alcotest.(check bool) "positive guardband" true (g.Guardband.guardband > 0.);
  Alcotest.(check bool) "aged = fresh + guardband" true
    (Fixtures.close ~tol:1e-15
       (g.Guardband.aged_period -. g.Guardband.fresh_period)
       g.Guardband.guardband);
  let balanced =
    Guardband.static ~deglib:t ~corner:Scenario.balanced design
  in
  Alcotest.(check bool) "balanced ages less than worst case" true
    (balanced.Guardband.guardband < g.Guardband.guardband)

let test_guardband_vth_only_smaller () =
  let t = deglib () in
  let design = Designs.counter ~bits:8 in
  let full = Guardband.static ~deglib:t ~corner:Scenario.worst_case design in
  let vth =
    Guardband.static ~mode:Aging_physics.Degradation.Vth_only ~deglib:t
      ~corner:Scenario.worst_case design
  in
  Alcotest.(check bool) "Fig 5a direction" true
    (vth.Guardband.guardband < full.Guardband.guardband)

let test_guardband_initial_cp_only_smaller () =
  let t = deglib () in
  let design = Designs.dsp () in
  let full = Guardband.static ~deglib:t ~corner:Scenario.worst_case design in
  let cp =
    Guardband.initial_cp_only ~deglib:t ~corner:Scenario.worst_case design
  in
  Alcotest.(check bool) "Fig 5c direction (cannot exceed full)" true
    (cp.Guardband.guardband <= full.Guardband.guardband +. 1e-13)

let test_guardband_dynamic () =
  let t = deglib () in
  let design = Designs.counter ~bits:4 in
  let g, annotated =
    Guardband.dynamic ~cycles:64 ~deglib:t
      ~stimulus:(fun _ -> [ ("en", true) ])
      design
  in
  Alcotest.(check bool) "dynamic guardband positive" true (g.Guardband.guardband > 0.);
  let worst = Guardband.static ~deglib:t ~corner:Scenario.worst_case design in
  Alcotest.(check bool) "workload stress below worst case" true
    (g.Guardband.guardband <= worst.Guardband.guardband +. 1e-13);
  Alcotest.(check bool) "netlist annotated" true
    (Array.exists
       (fun (inst : N.instance) -> String.contains inst.N.cell_name '@')
       annotated.N.instances)

let test_aging_synthesis_invariants () =
  let t = deglib () in
  let design = Designs.counter ~bits:8 in
  let options =
    { Aging_synth.Flow.default_options with Aging_synth.Flow.sizing_passes = 2;
      map_rounds = 1 }
  in
  let c = Aging_synthesis.run ~options ~deglib:t design in
  Alcotest.(check bool) "both equivalents" true
    (Fixtures.equivalent design c.Aging_synthesis.traditional
    && Fixtures.equivalent design c.Aging_synthesis.aware);
  Alcotest.(check bool) "required guardband positive" true
    (Aging_synthesis.required_guardband c > 0.);
  Alcotest.(check bool) "containment never negative (by construction)" true
    (Aging_synthesis.contained_guardband c
    <= Aging_synthesis.required_guardband c +. 1e-13);
  Alcotest.(check bool) "frequency gain consistent" true
    (Aging_synthesis.frequency_gain c >= -1e-9)

let test_surrogate_cert_reuse () =
  (* Replayed-anchor certificates depend only on the (model, axes,
     reference, anchor) tuple — not on the target corner — so a second
     corner build near the first must reuse every certificate of the
     shared config instead of re-fitting the anchor replays.  XOR2 on a
     small geometric grid keeps the five anchor builds cheap while still
     being a cell the surrogate actually serves. *)
  let geo n lo hi =
    Array.init n (fun i -> lo *. ((hi /. lo) ** (float i /. float (n - 1))))
  in
  let axes =
    {
      Axes.slews = geo 5 Axes.slew_min Axes.slew_max;
      loads = geo 5 Axes.load_min Axes.load_max;
    }
  in
  let t =
    Deg.create
      ~cells:[ Aging_cells.Catalog.find_exn "XOR2_X1" ]
      ~axes
      ~surrogate:(Aging_liberty.Characterize.surrogate ~tol:0.02 ())
      ()
  in
  ignore (Deg.corner t (Scenario.corner ~lambda_p:0.6 ~lambda_n:0.6));
  let reused0 = metric "fit.certs.reused" in
  ignore (Deg.corner t (Scenario.corner ~lambda_p:0.62 ~lambda_n:0.58));
  Alcotest.(check bool) "second nearby corner reuses certificates" true
    (metric "fit.certs.reused" > reused0);
  (* Both surrogate builds carry per-point provenance that partitions
     their grids. *)
  let sur_reports =
    List.filter
      (fun (_, r) ->
        List.exists
          (fun (s : Aging_liberty.Characterize.arc_stats) ->
            s.Aging_liberty.Characterize.prov <> None)
          r.Aging_liberty.Characterize.stats)
      (Deg.build_reports t)
  in
  Alcotest.(check int) "two surrogate corner builds" 2
    (List.length sur_reports);
  List.iter
    (fun (_, r) ->
      let totals = Aging_liberty.Characterize.report_totals r in
      match Aging_liberty.Characterize.report_surrogate r with
      | None -> Alcotest.fail "expected surrogate accounting"
      | Some st ->
        Alcotest.(check int) "provenance partitions the grid"
          totals.Aging_liberty.Characterize.points
          (st.Aging_liberty.Characterize.fit_simulated
          + st.Aging_liberty.Characterize.fit_predicted
          + st.Aging_liberty.Characterize.fit_fallback))
    sur_reports

let test_path_demo_switch () =
  let fresh = Scenario.scenario Scenario.fresh in
  let worst = Scenario.scenario Scenario.worst_case in
  let total scenario p = (Path_demo.measure ~scenario p).Path_demo.total in
  Alcotest.(check bool) "path1 critical fresh" true
    (total fresh Path_demo.path1 > total fresh Path_demo.path2);
  Alcotest.(check bool) "path2 critical aged (Fig. 3)" true
    (total worst Path_demo.path2 > total worst Path_demo.path1)

let test_run_vectors_matches_reference () =
  (* The full DCT circuit streamed through the gate-level simulator at a
     relaxed period must be bit-identical to the software reference. *)
  let t = deglib () in
  let lib = Deg.fresh t in
  let sim = Aging_sim.Event_sim.prepare ~library:lib (Designs.dct ()) in
  let period = 2. *. Aging_sim.Event_sim.min_period sim in
  let vectors = [ [| 12; -50; 100; 127; -128; 3; 77; -1 |]; Array.make 8 10 ] in
  let out = System_eval.run_vectors sim ~period vectors in
  List.iter2
    (fun got vec ->
      Alcotest.(check (array int)) "transform matches" (Dct.forward_1d vec) got)
    out vectors

let test_reference_image () =
  let img = Aging_image.Synthetic.gradient ~width:16 ~height:16 in
  let r = System_eval.reference_image img in
  Alcotest.(check bool) "high quality" true (Image.psnr ~reference:img r > 35.)

let suite =
  [
    ("deglib: memoization", `Quick, test_deglib_memoization);
    ("deglib: memo is LRU-bounded", `Quick, test_deglib_memo_bounded);
    ("deglib: disk cache", `Quick, test_deglib_disk_cache);
    ("deglib: corrupt cache rebuilds", `Quick, test_deglib_corrupt_cache_rebuilds);
    ("deglib: fingerprint sensitivity", `Quick, test_fingerprint_sensitivity);
    ("deglib: nested cache dir", `Quick, test_nested_cache_dir);
    ("deglib: parallel complete matches sequential", `Quick,
     test_complete_parallel_matches_sequential);
    ("deglib: vth-only mode", `Quick, test_vth_only_corner_faster);
    ("deglib: complete library", `Quick, test_complete_library_corners);
    ("deglib: single-OPC scaling", `Quick, test_single_opc_scaling);
    ("guardband: static", `Quick, test_guardband_static);
    ("guardband: vth-only smaller (Fig 5a)", `Quick, test_guardband_vth_only_smaller);
    ("guardband: initial-CP smaller (Fig 5c)", `Quick, test_guardband_initial_cp_only_smaller);
    ("guardband: dynamic workload", `Quick, test_guardband_dynamic);
    ("deglib: surrogate certificates reused across corners", `Quick,
     test_surrogate_cert_reuse);
    ("synthesis: invariants", `Slow, test_aging_synthesis_invariants);
    ("path demo: criticality switch (Fig 3)", `Quick, test_path_demo_switch);
    ("system eval: DCT stream matches reference", `Slow, test_run_vectors_matches_reference);
    ("system eval: reference image", `Quick, test_reference_image);
  ]

let props = []
