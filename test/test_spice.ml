module Device = Aging_physics.Device
module Mosfet = Aging_spice.Mosfet
module Circuit = Aging_spice.Circuit
module Engine = Aging_spice.Engine
module Stimulus = Aging_spice.Stimulus
module Waveform = Aging_spice.Waveform

let nmos = Device.nmos ~w:Device.w_min
let pmos = Device.pmos ~w:(2. *. Device.w_min)

let test_mosfet_off () =
  let i = Mosfet.channel_current nmos ~vg:0. ~vd:Device.vdd ~vs:0. in
  Alcotest.(check bool) "subthreshold leakage only" true (Float.abs i < 1e-7)

let test_mosfet_on_magnitude () =
  let i = Mosfet.channel_current nmos ~vg:Device.vdd ~vd:Device.vdd ~vs:0. in
  Alcotest.(check bool) "tens of uA for minimum device" true (i > 3e-5 && i < 3e-4)

let test_saturation_monotone () =
  let i1 = Mosfet.saturation_current nmos ~vov:0.3 in
  let i2 = Mosfet.saturation_current nmos ~vov:0.6 in
  Alcotest.(check bool) "monotone in overdrive" true (i2 > i1);
  Alcotest.(check (float 0.)) "zero below threshold" 0.
    (Mosfet.saturation_current nmos ~vov:(-0.1))

let prop_terminal_symmetry =
  Fixtures.qtest "drain/source swap negates the current"
    QCheck2.Gen.(triple (float_range 0. 1.1) (float_range 0. 1.1) (float_range 0. 1.1))
    (fun (vg, vd, vs) ->
      let a = Mosfet.channel_current nmos ~vg ~vd ~vs in
      let b = Mosfet.channel_current nmos ~vg ~vd:vs ~vs:vd in
      Float.abs (a +. b) <= 1e-9 +. (1e-6 *. Float.abs a))

let prop_deriv_matches_fd =
  (* The analytic Jacobian entries must match a finite difference of the
     current equation.  The model is piecewise-differentiable (vov = 0,
     vds = vdsat kinks), so at least one of the central/forward/backward
     estimates must agree — at a kink the one-sided estimate from the
     matching side is exact while the central one straddles it. *)
  let close a b =
    Float.abs (a -. b) <= 2e-6 +. (1e-3 *. Float.max (Float.abs a) (Float.abs b))
  in
  let matches f x analytic =
    let h = 1e-7 in
    let fm = f (x -. h) and f0 = f x and fp = f (x +. h) in
    close analytic ((fp -. fm) /. (2. *. h))
    || close analytic ((fp -. f0) /. h)
    || close analytic ((f0 -. fm) /. h)
  in
  Fixtures.qtest "channel_current_deriv matches finite differences"
    QCheck2.Gen.(
      quad bool
        (float_range (-0.1) 1.2)
        (float_range (-0.1) 1.2)
        (float_range (-0.1) 1.2))
    (fun (p, vg, vd, vs) ->
      let dev = if p then pmos else nmos in
      let d = Mosfet.channel_current_deriv dev ~vg ~vd ~vs in
      matches (fun x -> Mosfet.channel_current dev ~vg:x ~vd ~vs) vg d.Mosfet.di_dvg
      && matches (fun x -> Mosfet.channel_current dev ~vg ~vd:x ~vs) vd d.Mosfet.di_dvd
      && matches (fun x -> Mosfet.channel_current dev ~vg ~vd ~vs:x) vs d.Mosfet.di_dvs)

let test_pmos_sign () =
  (* Conducting pMOS pulling the drain up: conventional drain->source
     current is negative (current flows from source/Vdd into the drain). *)
  let i = Mosfet.channel_current pmos ~vg:0. ~vd:0. ~vs:Device.vdd in
  Alcotest.(check bool) "pull-up direction" true (i < -1e-5)

let test_mu_scales_current () =
  let weak = Device.with_aging ~delta_vth:0. ~mu_factor:0.5 nmos in
  let i_fresh = Mosfet.channel_current nmos ~vg:Device.vdd ~vd:Device.vdd ~vs:0. in
  let i_weak = Mosfet.channel_current weak ~vg:Device.vdd ~vd:Device.vdd ~vs:0. in
  Fixtures.check_close ~tol:1e-6 "current halves with mobility"
    (0.5 *. i_fresh) i_weak

let test_rc_discharge () =
  (* A 10 kOhm resistor discharging 10 fF from Vdd: compare to the
     analytic exponential at one time constant. *)
  let c = Circuit.create () in
  let n = Circuit.fresh_node ~name:"cap" c in
  Circuit.add_cap c n 1e-14;
  Circuit.add_res c ~a:n ~b:Circuit.gnd ~ohms:1e4;
  let r =
    Engine.transient
      ~options:{ Engine.default_options with Engine.settle_time = 1e-15 }
      ~init:[ (n, Device.vdd) ] c ~drives:[] ~t_stop:3e-10
  in
  let w = Engine.waveform r n in
  let tau = 1e-10 in
  let expected = Device.vdd *. exp (-1.) in
  let actual = Waveform.value_at w tau in
  Alcotest.(check bool)
    (Printf.sprintf "RC decay near analytic value (%.3f vs %.3f)" actual expected)
    true
    (Float.abs (actual -. expected) < 0.05)

let build_inverter () =
  let c = Circuit.create () in
  let a = Circuit.fresh_node ~name:"a" c in
  let y = Circuit.fresh_node ~name:"y" c in
  Circuit.add_mos c ~dev:pmos ~g:a ~d:y ~s:Circuit.vdd;
  Circuit.add_mos c ~dev:nmos ~g:a ~d:y ~s:Circuit.gnd;
  Circuit.add_cap c y 2e-15;
  (c, a, y)

let test_inverter_transient () =
  let c, a, y = build_inverter () in
  let stim = Stimulus.ramp ~t_start:1e-10 ~slew:2e-11 ~rising:true () in
  let r = Engine.transient c ~drives:[ (a, stim) ] ~t_stop:1e-9 in
  let w = Engine.waveform r y in
  Alcotest.(check bool) "starts high" true (Waveform.value_at w 0. > Device.vdd -. 0.05);
  Alcotest.(check bool) "ends low" true (Engine.final_voltage r y < 0.05);
  match
    Waveform.delay ~input:(Engine.waveform r a) ~output:w
      ~out_direction:Waveform.Falling ~vdd:Device.vdd
  with
  | Some d -> Alcotest.(check bool) "plausible delay" true (d > 1e-12 && d < 1e-10)
  | None -> Alcotest.fail "no delay measured"

let test_inverter_load_slows () =
  let measure load =
    let c, a, y = build_inverter () in
    Circuit.add_cap c y load;
    let stim = Stimulus.ramp ~t_start:1e-10 ~slew:2e-11 ~rising:true () in
    let r = Engine.transient c ~drives:[ (a, stim) ] ~t_stop:3e-9 in
    match
      Waveform.delay ~input:(Engine.waveform r a) ~output:(Engine.waveform r y)
        ~out_direction:Waveform.Falling ~vdd:Device.vdd
    with
    | Some d -> d
    | None -> Alcotest.fail "no delay"
  in
  Alcotest.(check bool) "4x load is slower" true (measure 8e-15 > measure 2e-15)

let test_stop_when () =
  let c, a, y = build_inverter () in
  let stim = Stimulus.ramp ~t_start:1e-10 ~slew:2e-11 ~rising:true () in
  let stopped =
    Engine.transient c ~drives:[ (a, stim) ]
      ~stop_when:(fun time _ -> time > 2e-10)
      ~t_stop:5e-9
  in
  let w = Engine.waveform stopped y in
  Alcotest.(check bool) "record truncated" true
    (w.Waveform.times.(Array.length w.Waveform.times - 1) < 3e-10)

let test_engine_diagnostics_clean () =
  let c, a, y = build_inverter () in
  ignore y;
  let stim = Stimulus.ramp ~t_start:1e-10 ~slew:2e-11 ~rising:true () in
  let r = Engine.transient c ~drives:[ (a, stim) ] ~t_stop:1e-9 in
  let d = Engine.diagnostics r in
  Alcotest.(check int) "no forced steps" 0 d.Engine.non_converged_steps;
  Alcotest.(check bool) "converged" true (Engine.converged r);
  Alcotest.(check bool) "jacobian was built" true (d.Engine.jacobian_refreshes > 0)

let test_engine_diagnostics_stiff () =
  (* Deliberately stiff setup: a single Newton iteration against an
     unreachable tolerance, with the dt floor pinned to the ceiling so the
     solver cannot shrink the step — every accepted step is non-converged
     and must be counted, not hidden. *)
  let c, a, y = build_inverter () in
  ignore y;
  let options =
    { Engine.default_options with
      Engine.newton_max = 1;
      newton_tol = 1e-18;
      dt_min = Engine.default_options.Engine.dt_max;
      settle_time = 1e-10;
    }
  in
  let stim = Stimulus.ramp ~t_start:1e-10 ~slew:2e-11 ~rising:true () in
  let r = Engine.transient ~options c ~drives:[ (a, stim) ] ~t_stop:1e-9 in
  let d = Engine.diagnostics r in
  Alcotest.(check bool) "non-converged steps counted" true
    (d.Engine.non_converged_steps > 0);
  Alcotest.(check bool) "not converged" true (not (Engine.converged r))

let test_engine_diagnostics_rejections () =
  (* A tight dv_reject forces step rejections on the switching edge. *)
  let c, a, y = build_inverter () in
  ignore y;
  let options = { Engine.default_options with Engine.dv_reject = 5e-3 } in
  let stim = Stimulus.ramp ~t_start:1e-10 ~slew:2e-11 ~rising:true () in
  let r = Engine.transient ~options c ~drives:[ (a, stim) ] ~t_stop:1e-9 in
  let d = Engine.diagnostics r in
  Alcotest.(check bool) "rejections counted" true (d.Engine.rejected_steps > 0);
  Alcotest.(check bool) "still converged" true (Engine.converged r)

let test_engine_validation () =
  let c, a, _ = build_inverter () in
  let stim = Stimulus.constant 0. in
  Alcotest.check_raises "t_stop" (Invalid_argument "Engine.transient: t_stop <= 0")
    (fun () -> ignore (Engine.transient c ~drives:[] ~t_stop:0.));
  Alcotest.check_raises "rail drive"
    (Invalid_argument "Engine.transient: cannot drive a rail") (fun () ->
      ignore
        (Engine.transient c ~drives:[ (Circuit.gnd, Stimulus.constant 0.) ] ~t_stop:1e-9));
  Alcotest.check_raises "duplicate drive"
    (Invalid_argument "Engine.transient: duplicate drive") (fun () ->
      ignore (Engine.transient c ~drives:[ (a, stim); (a, stim) ] ~t_stop:1e-9));
  Alcotest.check_raises "init on a driven node"
    (Invalid_argument "Engine.transient: init on a driven node") (fun () ->
      ignore
        (Engine.transient c ~drives:[ (a, stim) ] ~init:[ (a, 0.5) ] ~t_stop:1e-9));
  Alcotest.check_raises "init on a rail"
    (Invalid_argument "Engine.transient: init on a rail") (fun () ->
      ignore (Engine.transient c ~drives:[] ~init:[ (Circuit.vdd, 0.) ] ~t_stop:1e-9));
  Alcotest.check_raises "init on unknown node"
    (Invalid_argument "Engine.transient: init on unknown node") (fun () ->
      ignore
        (Engine.transient c ~drives:[] ~init:[ (Circuit.node_count c, 0.) ] ~t_stop:1e-9))

let test_engine_singular () =
  (* A floating node with zero capacitance and no conduction path makes the
     linear system structurally singular.  The engine must surface that —
     count the collapsed factorization, reject the step, report
     non-convergence — rather than clamp the pivot and invent a voltage. *)
  let c = Circuit.create () in
  let n = Circuit.fresh_node ~name:"float" c in
  let options =
    { Engine.default_options with Engine.c_floor = 0.; settle_time = 1e-12 }
  in
  let r = Engine.transient ~options ~init:[ (n, 0.3) ] c ~drives:[] ~t_stop:5e-12 in
  let d = Engine.diagnostics r in
  Alcotest.(check bool) "singular systems counted" true (d.Engine.singular_systems > 0);
  Alcotest.(check bool) "steps rejected" true (d.Engine.rejected_steps > 0);
  Alcotest.(check bool) "not converged" true (not (Engine.converged r));
  Alcotest.(check (float 1e-9)) "state never corrupted" 0.3 (Engine.final_voltage r n)

let test_stimulus_ramp () =
  let ramp = Stimulus.ramp ~t_start:1e-10 ~slew:6e-11 ~rising:true () in
  Alcotest.(check (float 1e-9)) "before start" 0. (ramp 0.);
  Alcotest.(check (float 1e-9)) "after end" Device.vdd (ramp 1e-9);
  Fixtures.check_close ~tol:1e-3 "midpoint"
    (Device.vdd /. 2.)
    (ramp (1e-10 +. (Stimulus.full_ramp_time 6e-11 /. 2.)));
  Alcotest.check_raises "slew validation" (Invalid_argument "Stimulus.ramp: non-positive slew")
    (fun () ->
      ignore (Stimulus.ramp ~t_start:0. ~slew:0. ~rising:true () : Stimulus.t))

let test_waveform_crossings () =
  let w =
    { Waveform.times = [| 0.; 1.; 2.; 3.; 4. |]; values = [| 0.; 1.; 0.; 1.; 1. |] }
  in
  (match Waveform.cross w ~level:0.5 ~direction:Waveform.Rising with
  | Some t -> Alcotest.(check (float 1e-9)) "first rising" 0.5 t
  | None -> Alcotest.fail "missing first crossing");
  match Waveform.cross_last w ~level:0.5 ~direction:Waveform.Rising with
  | Some t -> Alcotest.(check (float 1e-9)) "last rising" 2.5 t
  | None -> Alcotest.fail "missing last crossing"

let test_waveform_slew () =
  (* Linear 0->1 ramp over 1 s: the 20/80 transition takes 0.6 s. *)
  let w = { Waveform.times = [| 0.; 1. |]; values = [| 0.; 1. |] } in
  match Waveform.slew w ~direction:Waveform.Rising ~vdd:1. with
  | Some s -> Alcotest.(check (float 1e-9)) "20-80 slew" 0.6 s
  | None -> Alcotest.fail "no slew"

let test_waveform_slew_multi_edge () =
  (* A full edge followed by a later partial swing: the slew must anchor on
     the LAST far-level crossing and pair it with the near-level crossing at
     or before it.  The old pairing took the last near-level crossing
     anywhere in the record, which here lands after the anchor (on the
     partial swing) and produced a negative width, i.e. no slew at all. *)
  let rising =
    { Waveform.times = [| 0.; 1.; 2.; 3. |]; values = [| 0.; 1.; 0.; 0.3 |] }
  in
  (match Waveform.slew rising ~direction:Waveform.Rising ~vdd:1. with
  | Some s -> Alcotest.(check (float 1e-9)) "rising multi-edge slew" 0.6 s
  | None -> Alcotest.fail "rising: no slew");
  let falling =
    { Waveform.times = [| 0.; 1.; 2.; 3. |]; values = [| 1.; 0.; 1.; 0.7 |] }
  in
  match Waveform.slew falling ~direction:Waveform.Falling ~vdd:1. with
  | Some s -> Alcotest.(check (float 1e-9)) "falling multi-edge slew" 0.6 s
  | None -> Alcotest.fail "falling: no slew"

let test_circuit_map_devices () =
  let c, _, y = build_inverter () in
  let doubled =
    Circuit.map_devices
      (fun d -> { d with Device.w = 2. *. d.Device.w })
      c
  in
  Alcotest.(check int) "same node count" (Circuit.node_count c) (Circuit.node_count doubled);
  Alcotest.(check bool) "parasitic caps grew" true
    (Circuit.capacitance doubled y > Circuit.capacitance c y);
  (* Explicit load must be preserved exactly once. *)
  let para_fresh =
    List.fold_left
      (fun acc (m : Circuit.mos) ->
        acc
        +. (if m.Circuit.d = y then Device.drain_capacitance m.Circuit.dev else 0.)
        +. if m.Circuit.s = y then Device.drain_capacitance m.Circuit.dev else 0.)
      0. (Circuit.mosfets doubled)
  in
  Fixtures.check_close ~tol:1e-18 "explicit cap preserved" 2e-15
    (Circuit.capacitance doubled y -. para_fresh)

let suite =
  [
    ("mosfet: off state", `Quick, test_mosfet_off);
    ("mosfet: on-current magnitude", `Quick, test_mosfet_on_magnitude);
    ("mosfet: saturation monotone", `Quick, test_saturation_monotone);
    ("mosfet: pmos pull-up sign", `Quick, test_pmos_sign);
    ("mosfet: mobility scales current", `Quick, test_mu_scales_current);
    ("engine: RC discharge vs analytic", `Quick, test_rc_discharge);
    ("engine: inverter transient", `Quick, test_inverter_transient);
    ("engine: load slows the gate", `Quick, test_inverter_load_slows);
    ("engine: stop_when truncates", `Quick, test_stop_when);
    ("engine: clean-run diagnostics", `Quick, test_engine_diagnostics_clean);
    ("engine: stiff run counts non-converged steps", `Quick, test_engine_diagnostics_stiff);
    ("engine: tight dv_reject counts rejections", `Quick, test_engine_diagnostics_rejections);
    ("engine: validation", `Quick, test_engine_validation);
    ("engine: singular system surfaced", `Quick, test_engine_singular);
    ("stimulus: ramp shape", `Quick, test_stimulus_ramp);
    ("waveform: crossings", `Quick, test_waveform_crossings);
    ("waveform: slew of a ramp", `Quick, test_waveform_slew);
    ("waveform: multi-edge slew pairing", `Quick, test_waveform_slew_multi_edge);
    ("circuit: map_devices rebuilds parasitics", `Quick, test_circuit_map_devices);
  ]

let props = [ prop_terminal_symmetry; prop_deriv_matches_fd ]
